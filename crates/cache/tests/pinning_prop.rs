//! Long randomized drive of the prefix-pinning cache against a real
//! namespace: 10k insert / expire / prefetch steps, with a popularity
//! meter deciding what goes cold. After every step the cached set must
//! still be a connected tree rooted at `/`, and every eviction must have
//! taken a leaf (an entry with no cached children at the moment it left).

use dynmds_cache::{InsertKind, MetaCache, Popularity};
use dynmds_event::{SimDuration, SimRng, SimTime};
use dynmds_namespace::{FxHashSet, InodeId, Namespace, NamespaceSpec};

const STEPS: usize = 10_000;

/// One checked insert: perform it, then immediately assert every evicted
/// entry was a leaf — it is gone and left no cached child pointing at it.
/// (The check must run per insert: a later insert in the same burst may
/// legitimately bring an evicted id back.)
fn checked_insert(
    cache: &mut MetaCache,
    id: InodeId,
    parent: Option<InodeId>,
    kind: InsertKind,
) -> usize {
    let evicted = cache.insert(id, parent, kind);
    for &ev in &evicted {
        assert!(!cache.contains(ev), "evicted {ev} still cached");
        for cached in cache.iter_ids() {
            assert_ne!(
                cache.parent_of(cached).unwrap(),
                Some(ev),
                "eviction of {ev} orphaned cached child {cached}"
            );
        }
    }
    evicted.len()
}

/// Insert `id` with its full ancestor chain, root first, so every parent
/// link lands on an already-cached entry. Returns how many were evicted.
fn insert_with_prefixes(
    cache: &mut MetaCache,
    ns: &Namespace,
    id: InodeId,
    kind: InsertKind,
) -> usize {
    let mut evicted = 0;
    let mut chain: Vec<InodeId> = ns.ancestors(id).collect();
    chain.reverse();
    for &anc in &chain {
        let parent = ns.parent(anc).unwrap();
        evicted += checked_insert(cache, anc, parent, InsertKind::Prefix);
    }
    evicted + checked_insert(cache, id, ns.parent(id).unwrap(), kind)
}

/// The cached set forms one tree rooted at the namespace root: the root
/// is cached whenever anything is, it is the only entry without a cached
/// parent, and walking parent links from any entry terminates at it.
fn assert_connected_tree(cache: &MetaCache, ns: &Namespace) {
    let cached: FxHashSet<InodeId> = cache.iter_ids().collect();
    if cached.is_empty() {
        return;
    }
    assert!(cached.contains(&ns.root()), "non-empty cache must contain the root");
    for &id in &cached {
        let link = cache.parent_of(id).expect("iterated id is cached");
        match link {
            None => assert_eq!(id, ns.root(), "{id} has no parent link but is not the root"),
            Some(p) => {
                assert!(cached.contains(&p), "{id} links to uncached parent {p}");
                assert_eq!(ns.parent(id).unwrap(), Some(p), "{id} pinned under wrong parent");
            }
        }
        // Walk to the root; cycles would loop past the cache size.
        let (mut cur, mut hops) = (id, 0usize);
        while let Some(Some(p)) = cache.parent_of(cur) {
            cur = p;
            hops += 1;
            assert!(hops <= cached.len(), "parent-link cycle through {id}");
        }
        assert_eq!(cur, ns.root(), "walk from {id} ended at {cur}, not the root");
    }
}

#[test]
fn pinning_survives_10k_randomized_steps() {
    let snap =
        NamespaceSpec { users: 6, mean_dirs_per_user: 6.0, seed: 0xCAC4E, ..Default::default() }
            .generate();
    let ns = snap.ns;
    let ids: Vec<InodeId> = ns.live_ids().collect();
    let dirs: Vec<InodeId> = ids.iter().copied().filter(|&i| ns.is_dir(i)).collect();

    let mut rng = SimRng::seed_from_u64(0x9157_11ED);
    let mut cache = MetaCache::new(96);
    let mut pop = Popularity::new(SimDuration::from_secs(5));
    let mut now = SimTime::ZERO;
    let (mut total_evicted, mut total_expired) = (0usize, 0usize);

    for step in 0..STEPS {
        now += SimDuration::from_millis(rng.below(40) + 1);
        match rng.below(10) {
            // Target insert: a client op landed on this inode.
            0..=3 => {
                let id = *rng.pick(&ids);
                total_evicted += insert_with_prefixes(&mut cache, &ns, id, InsertKind::Target);
                pop.record(now, id);
            }
            // Prefetch: readdir loads a directory's children on probation.
            4..=5 => {
                let dir = *rng.pick(&dirs);
                total_evicted += insert_with_prefixes(&mut cache, &ns, dir, InsertKind::Target);
                pop.record(now, dir);
                let kids: Vec<InodeId> = ns.children(dir).unwrap().map(|(_, c)| c).collect();
                for kid in kids {
                    // The prefetch itself may evict the directory mid-loop
                    // (tiny cache); re-pin the chain if so.
                    if !cache.contains(dir) {
                        total_evicted +=
                            insert_with_prefixes(&mut cache, &ns, dir, InsertKind::Prefix);
                    }
                    total_evicted +=
                        checked_insert(&mut cache, kid, Some(dir), InsertKind::Prefetch);
                }
            }
            // Re-touch something popular, keeping it warm.
            6..=7 => {
                let id = *rng.pick(&ids);
                if cache.lookup(id, rng.chance(0.5)) {
                    pop.record(now, id);
                }
            }
            // Expire: walk the cache and drop cold leaves — entries whose
            // decayed popularity fell below threshold and that pin nothing.
            8 => {
                let cold: Vec<InodeId> = cache
                    .iter_ids()
                    .filter(|&id| cache.pins(id) == Some(0) && pop.value(now, id) < 0.25)
                    .collect();
                for id in cold {
                    // A removal earlier in this sweep may have been this
                    // entry's last pin holder? No — removing a child can
                    // only *unpin* parents, so `pins == 0` stays valid for
                    // leaves, but re-check to keep the test honest.
                    if cache.pins(id) == Some(0) {
                        cache.remove(id).expect("unpinned entry is removable");
                        pop.forget(id);
                        total_expired += 1;
                    }
                }
            }
            // Housekeeping: decay-prune the meter; the cache is untouched.
            _ => pop.prune(now, 0.01),
        }

        if step % 16 == 0 || step + 1 == STEPS {
            cache.check_integrity();
            assert_connected_tree(&cache, &ns);
        }
        if cache.stats().overflows == 0 {
            assert!(cache.len() <= cache.capacity(), "capacity breached without overflow");
        }
    }

    assert!(total_evicted > 0, "10k steps on a 96-entry cache must evict");
    assert!(total_expired > 0, "cold leaves must have expired");
    let s = cache.stats();
    assert_eq!(s.evictions as usize, total_evicted, "eviction counter drifted");
}

#[test]
fn decay_keeps_hot_items_and_expires_idle_ones() {
    // Popularity ↔ cache interaction in isolation: items re-touched every
    // half-life stay above the expiry threshold indefinitely; items left
    // idle cross it after a few half-lives no matter how hot they were.
    let mut pop = Popularity::new(SimDuration::from_secs(5));
    let hot = InodeId(1);
    let idle = InodeId(2);
    for _ in 0..64 {
        pop.record(SimTime::ZERO, idle);
    }
    let mut now = SimTime::ZERO;
    for _ in 0..20 {
        now += SimDuration::from_secs(5);
        pop.record(now, hot);
    }
    assert!(pop.value(now, hot) >= 1.0, "re-touched item stays warm");
    assert!(pop.value(now, idle) < 0.25, "64-burst decays below expiry after 100s");
}

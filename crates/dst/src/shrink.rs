//! Trace shrinking: delta-debug a diverging run down to a minimal
//! reproducer.
//!
//! The vendored `proptest` stand-in has no shrinking, so this is a
//! hand-written minimizer over two dimensions:
//!
//! 1. **Ops** — find the smallest failing prefix of the recorded trace by
//!    bisection, then remove interior chunks ddmin-style at shrinking
//!    granularity (half, quarter, …, single records);
//! 2. **Fault events** — expand the scenario's schedule (scripted events
//!    plus churn) into its concrete event list once, then greedily drop
//!    events that are not needed to reproduce.
//!
//! Every candidate is judged by a full deterministic replay
//! ([`replay_trace`]), so a kept reduction is *known* to still diverge.
//! The total number of replays is capped: shrinking is a convenience on
//! the way to a repro file, not an unbounded search.

use dynmds_core::FaultSchedule;
use dynmds_workload::Trace;

use crate::scenario::{replay_trace, Scenario};

/// What the shrinker did, for the torture report.
#[derive(Clone, Copy, Debug)]
pub struct ShrinkStats {
    /// Replays spent.
    pub probes: u64,
    /// Trace records before / after.
    pub ops_before: usize,
    /// Trace records after shrinking.
    pub ops_after: usize,
    /// Concrete fault events before / after.
    pub faults_before: usize,
    /// Fault events after shrinking.
    pub faults_after: usize,
}

struct Search {
    sc: Scenario,
    uids: Vec<u32>,
    probes: u64,
    budget: u64,
}

impl Search {
    /// Does this candidate still diverge?
    fn fails(&mut self, trace: &Trace) -> bool {
        self.probes += 1;
        !replay_trace(&self.sc, trace, &self.uids).divergences.is_empty()
    }

    fn exhausted(&self) -> bool {
        self.probes >= self.budget
    }
}

fn with_records(base: &Trace, records: Vec<dynmds_workload::TraceRecord>) -> Trace {
    Trace { snapshot_seed: base.snapshot_seed, n_clients: base.n_clients, records }
}

/// Smallest failing prefix by bisection (assumes monotonicity; verified —
/// on a non-monotone failure the full trace is kept).
fn shrink_prefix(search: &mut Search, trace: &Trace) -> Trace {
    let (mut lo, mut hi) = (0usize, trace.records.len());
    while lo < hi && !search.exhausted() {
        let mid = lo + (hi - lo) / 2;
        let cand = with_records(trace, trace.records[..mid].to_vec());
        if search.fails(&cand) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let cand = with_records(trace, trace.records[..hi].to_vec());
    if hi < trace.records.len() && search.fails(&cand) {
        cand
    } else {
        trace.clone()
    }
}

/// Drop every record of one client at a time. Replay keeps exhausted
/// clients issuing fallback stats at their own cadence, so removing a
/// whole client's records barely perturbs the other clients' timing —
/// these coarse drops succeed far more often than interior chunk removal
/// and cheaply eliminate most of the trace when only one or two clients
/// matter for the divergence.
fn shrink_clients(search: &mut Search, mut trace: Trace) -> Trace {
    loop {
        let mut progressed = false;
        for client in 0..trace.n_clients {
            if search.exhausted() {
                return trace;
            }
            if !trace.records.iter().any(|r| r.client == client) {
                continue;
            }
            let records: Vec<_> =
                trace.records.iter().filter(|r| r.client != client).cloned().collect();
            let cand = with_records(&trace, records);
            if search.fails(&cand) {
                trace = cand;
                progressed = true;
            }
        }
        if !progressed {
            return trace;
        }
    }
}

/// Remove interior chunks, halving the granularity until single records.
fn shrink_chunks(search: &mut Search, mut trace: Trace) -> Trace {
    let mut gran = (trace.records.len() / 2).max(1);
    loop {
        let mut progressed = false;
        let mut i = 0;
        while i < trace.records.len() && !search.exhausted() {
            let end = (i + gran).min(trace.records.len());
            let mut records = trace.records.clone();
            records.drain(i..end);
            let cand = with_records(&trace, records);
            if search.fails(&cand) {
                trace = cand;
                progressed = true;
                // Same index now holds the next chunk.
            } else {
                i = end;
            }
        }
        if gran == 1 && !progressed {
            return trace;
        }
        if search.exhausted() {
            return trace;
        }
        if !progressed {
            gran = (gran / 2).max(1);
        }
    }
}

/// Greedily drop concrete fault events that the divergence does not need.
fn shrink_faults(search: &mut Search, trace: &Trace) -> FaultSchedule {
    loop {
        let events = search.sc.faults.events.clone();
        let mut progressed = false;
        for i in 0..events.len() {
            if search.exhausted() {
                break;
            }
            let mut cand = events.clone();
            cand.remove(i);
            let saved = std::mem::replace(
                &mut search.sc.faults,
                FaultSchedule { events: cand, churn: None },
            );
            if search.fails(trace) {
                progressed = true;
                break; // indices shifted; restart the scan
            }
            search.sc.faults = saved;
        }
        if !progressed {
            return search.sc.faults.clone();
        }
    }
}

/// Minimizes a diverging `(scenario, trace)` pair. Returns the shrunk
/// scenario (fault schedule reduced to an explicit event list), the
/// shrunk trace, and search statistics. `budget` caps the number of
/// replays spent.
///
/// The first step materializes the schedule's churn into concrete events
/// — `FaultSchedule::expanded` is deterministic, so the explicit list
/// replays identically and the repro file needs no churn generator.
pub fn shrink(
    sc: &Scenario,
    trace: &Trace,
    uids: &[u32],
    budget: u64,
) -> (Scenario, Trace, ShrinkStats) {
    let mut flat = sc.clone();
    flat.faults = FaultSchedule { events: sc.faults.expanded(sc.n_mds as usize), churn: None };
    let faults_before = flat.faults.events.len();
    let ops_before = trace.records.len();

    let mut search = Search { sc: flat, uids: uids.to_vec(), probes: 0, budget };
    if !search.fails(trace) {
        // Flattening churn must not change the run; if the divergence is
        // gone the caller keeps the original artifacts untouched.
        let stats = ShrinkStats {
            probes: search.probes,
            ops_before,
            ops_after: ops_before,
            faults_before,
            faults_after: faults_before,
        };
        return (sc.clone(), trace.clone(), stats);
    }

    let trace = shrink_prefix(&mut search, trace);
    let trace = shrink_clients(&mut search, trace);
    let trace = shrink_chunks(&mut search, trace);
    let faults = shrink_faults(&mut search, &trace);
    search.sc.faults = faults;
    // Fault removal can unlock further op removal (and vice versa); one
    // more cheap pass at fine granularity usually converges.
    let trace = shrink_chunks(&mut search, trace);
    // Proxies go LAST: a proxy-coherence divergence by definition needs
    // the tier, so trying to remove it earlier would waste replays, while
    // a divergence that survives with the tier off is a plain cluster bug
    // and the repro should say so.
    if search.sc.n_proxies > 0 && !search.exhausted() {
        let saved = search.sc.n_proxies;
        search.sc.n_proxies = 0;
        if !search.fails(&trace) {
            search.sc.n_proxies = saved;
        }
    }

    let stats = ShrinkStats {
        probes: search.probes,
        ops_before,
        ops_after: trace.records.len(),
        faults_before,
        faults_after: search.sc.faults.events.len(),
    };
    (search.sc.clone(), trace, stats)
}

//! Deterministic simulation testing (DST) for the dynmds cluster.
//!
//! Three pieces, composed by the `experiments torture` subcommand:
//!
//! * [`oracle`] — a flat reference-model filesystem fed by the cluster's
//!   applied-op log plus an invariant sweep (namespace, authority, anchor
//!   table, caches, replication, liveness) run at checkpoints;
//! * [`scenario`] — a seeded fuzzer: one `u64` seed expands into a full
//!   scenario (cluster size, workload mix, cache pressure, fault/churn
//!   schedule), run against the oracle with the op trace recorded;
//! * [`shrink`] + [`repro`] — on divergence, delta-debug the recorded
//!   trace and fault schedule down to a minimal reproducer and write it
//!   as a plain-text file under `dst/repros/`, replayable by
//!   `tests/dst_repros.rs`.
//!
//! Everything is deterministic: the same seed produces a byte-identical
//! run (checked by the torture harness re-running a seed and comparing
//! digests), and a repro file replays the exact divergence with no
//! dependence on the workload generator that produced it.

pub mod oracle;
pub mod repro;
pub mod scenario;
pub mod shrink;

pub mod cli;

pub use oracle::{expected_authority, Oracle, RefModel};
pub use repro::Repro;
pub use scenario::{replay_trace, run_scenario, RunOutcome, Scenario};
pub use shrink::shrink;

//! Seeded fuzz scenarios: one `u64` expands deterministically into a full
//! cluster/workload/fault configuration, run against the oracle.
//!
//! Two entry points share one driver:
//!
//! * [`run_scenario`] generates the workload from the scenario seed and
//!   (optionally) records every generated op into a [`Trace`] for the
//!   shrinker;
//! * [`replay_trace`] re-runs a scenario while feeding the recorded trace
//!   back through [`TraceReplay`] — the only source of nondeterminism the
//!   trace wrapper replaces is the workload generator, so a replay walks
//!   the exact event sequence of the original run and reproduces its
//!   divergence (or proves a shrunk candidate no longer does).

use std::cell::RefCell;
use std::rc::Rc;

use dynmds_core::{
    ChurnSpec, DiskScope, FaultEvent, FaultSchedule, NetFaultSpec, RetryPolicy, SimConfig,
    Simulation,
};
use dynmds_event::{SimDuration, SimRng, SimTime};
use dynmds_namespace::{ClientId, Namespace, NamespaceSpec, Snapshot};
use dynmds_partition::StrategyKind;
use dynmds_storage::DiskFault;
use dynmds_workload::{
    GeneralWorkload, LookupChurn, Op, OpMix, Trace, TraceOp, TraceRecord, TraceReplay, Workload,
    WorkloadConfig,
};

use crate::oracle::Oracle;

/// Everything needed to reconstruct one fuzz run. All behaviour-affecting
/// randomness is materialized into these fields (the repro file stores
/// them verbatim), so a parsed repro rebuilds the identical simulation
/// without re-deriving anything from the seed.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The fuzz seed (also salts the cluster, snapshot and workload RNGs).
    pub seed: u64,
    /// Strategy under test.
    pub strategy: StrategyKind,
    /// Cluster size.
    pub n_mds: u16,
    /// Client count.
    pub n_clients: u32,
    /// Approximate initial namespace size.
    pub target_items: u64,
    /// Per-MDS cache capacity — kept small to force eviction churn.
    pub cache_capacity: usize,
    /// Dynamic directory-hashing threshold (0 = off).
    pub dir_hash_threshold: usize,
    /// GPFS-style shared writes (§4.2).
    pub shared_writes: bool,
    /// Client metadata leases (§4.2).
    pub client_leases: bool,
    /// Mean client think time, microseconds.
    pub think_us: u64,
    /// Retry backoff base, microseconds (cap is 8×).
    pub retry_base_us: u64,
    /// Retry budget.
    pub retry_max: u8,
    /// Heartbeat interval, microseconds.
    pub heartbeat_us: u64,
    /// Completed-op count at which the run stops.
    pub ops_target: u64,
    /// Hard stop (virtual time), microseconds.
    pub horizon_us: u64,
    /// Hotspot proxies in front of the cluster (0 = off).
    pub n_proxies: u16,
    /// Proxy hot-detector threshold (stored as an integer so the repro
    /// text round-trips exactly; the config maps it to `f64`).
    pub proxy_thr: u64,
    /// Run the sharded engine densely (execute every conservative window)
    /// instead of skipping idle spans. Skipping is invisible by
    /// construction, so the fuzzer draws this to keep both window paths
    /// under continuous test; the legacy oracle engine ignores it.
    pub force_dense: bool,
    /// Fault schedule (generated: scripted windows + churn; shrunk: an
    /// explicit event list with `churn: None`).
    pub faults: FaultSchedule,
}

impl Scenario {
    /// Expands `seed` into a scenario for `strategy`. Every draw comes
    /// from one stream seeded off `seed`, so the expansion is total and
    /// deterministic.
    pub fn from_seed(seed: u64, strategy: StrategyKind, ops_target: u64) -> Self {
        let mut rng = SimRng::seed_from_u64(seed ^ 0x00D5_7F00).fork(strategy as u64);
        let n_mds = 2 + rng.below(5) as u16; // 2..=6
        let n_clients = u32::from(n_mds) * (2 + rng.below(5) as u32);
        let target_items = 300 + rng.below(1_200);
        let cache_capacity = (64 + rng.below(192)) as usize;
        let dir_hash_threshold = if rng.chance(0.3) { (24 + rng.below(48)) as usize } else { 0 };
        let shared_writes = strategy.is_subtree() && rng.chance(0.25);
        let client_leases = rng.chance(0.25);
        let think_us = 20_000 + rng.below(60_000); // 20–80 ms
        let retry_base_us = 100_000 + rng.below(400_000); // 0.1–0.5 s
        let retry_max = 2 + rng.below(5) as u8;
        let heartbeat_us = 500_000 + rng.below(1_500_000); // 0.5–2 s
                                                           // Long enough that the closed loop comfortably reaches the target.
        let horizon_us =
            (3 * ops_target * think_us / u64::from(n_clients)).clamp(8_000_000, 60_000_000);

        let mut events = Vec::new();
        let churn = rng.chance(0.8).then(|| ChurnSpec {
            mtbf: SimDuration::from_micros(2_000_000 + rng.below(6_000_000)),
            mttr: SimDuration::from_micros(300_000 + rng.below(2_000_000)),
            seed: rng.below(1 << 48),
            until: SimTime::ZERO + SimDuration::from_micros(horizon_us * 3 / 4),
            nodes: None,
        });
        if rng.chance(0.3) {
            let from = rng.below(horizon_us / 2);
            let until = from + 1_000_000 + rng.below(horizon_us / 3);
            events.push(FaultEvent::DiskDegrade {
                from: SimTime::ZERO + SimDuration::from_micros(from),
                until: SimTime::ZERO + SimDuration::from_micros(until),
                fault: DiskFault {
                    latency_mult: 1.0 + rng.unit() * 5.0,
                    iops_mult: 0.25 + rng.unit() * 0.75,
                    error_p: rng.unit() * 0.03,
                },
                scope: *rng.pick(&[DiskScope::Osd, DiskScope::Journal, DiskScope::All]),
            });
        }
        if rng.chance(0.4) {
            let from = rng.below(horizon_us / 2);
            let until = from + 1_000_000 + rng.below(horizon_us / 3);
            events.push(FaultEvent::NetFault {
                from: SimTime::ZERO + SimDuration::from_micros(from),
                until: SimTime::ZERO + SimDuration::from_micros(until),
                spec: NetFaultSpec { loss_p: rng.unit() * 0.06, dup_p: rng.unit() * 0.04 },
            });
        }
        // Proxy draws come LAST so every earlier field keeps the value it
        // had before proxies existed — old seeds expand to the same base
        // scenario plus an independent proxy layer.
        let n_proxies = if rng.below(100) < 40 { 1 + rng.below(3) as u16 } else { 0 };
        let proxy_thr = 8 + rng.below(48);
        // Drawn after the proxy fields for the same back-compat reason:
        // old seeds keep their exact pre-skip scenario plus this one bit.
        let force_dense = rng.below(100) < 25;

        Scenario {
            seed,
            strategy,
            n_mds,
            n_clients,
            target_items,
            cache_capacity,
            dir_hash_threshold,
            shared_writes,
            client_leases,
            think_us,
            retry_base_us,
            retry_max,
            heartbeat_us,
            ops_target,
            horizon_us,
            n_proxies,
            proxy_thr,
            force_dense,
            faults: FaultSchedule { events, churn },
        }
    }

    /// The simulator configuration this scenario runs under.
    pub fn config(&self) -> SimConfig {
        let mut cfg = SimConfig::small(self.strategy);
        cfg.n_mds = self.n_mds;
        cfg.n_clients = self.n_clients;
        cfg.cache_capacity = self.cache_capacity;
        cfg.journal_capacity = self.cache_capacity * 2;
        cfg.costs.think_mean = SimDuration::from_micros(self.think_us);
        cfg.heartbeat = SimDuration::from_micros(self.heartbeat_us);
        // Ops arrive slowly (20–80 ms think) against the default threshold
        // tuned for 1 ms; lower it so traffic control actually engages.
        cfg.replication_threshold = 12.0;
        cfg.dir_hash_threshold = self.dir_hash_threshold;
        cfg.shared_writes = self.shared_writes;
        cfg.client_leases = self.client_leases;
        cfg.seed = self.seed ^ 0xC1A5;
        cfg.retry = RetryPolicy {
            max_retries: self.retry_max,
            base: SimDuration::from_micros(self.retry_base_us),
            multiplier: 2.0,
            cap: SimDuration::from_micros(self.retry_base_us * 8),
            jitter_frac: 0.1,
        };
        cfg.faults = self.faults.clone();
        cfg.proxy.count = self.n_proxies;
        cfg.proxy.hot_threshold = self.proxy_thr as f64;
        cfg.force_dense = self.force_dense;
        cfg
    }

    /// The initial namespace (derived from the scenario seed alone).
    pub fn snapshot(&self) -> Snapshot {
        NamespaceSpec::with_target_items(
            self.n_clients as usize,
            self.target_items,
            self.seed ^ 0xF5,
        )
        .generate()
    }

    /// The generated workload: a randomized mix biased toward namespace
    /// mutations (links, renames, unlinks) to stress the anchor table and
    /// cache coherence. Proxy scenarios additionally wrap the mix in
    /// [`LookupChurn`] so negative-lookup caching and its invalidation
    /// paths see real traffic. Only used when *generating*; replays
    /// ignore it.
    pub fn workload(&self, snap: &Snapshot) -> Box<dyn Workload + Send> {
        self.workload_parts(&snap.user_homes, &snap.shared_roots, &snap.ns)
    }

    /// [`Scenario::workload`] from pre-split snapshot parts — for callers
    /// (the sharded cross-check) that hold only a `&Namespace` plus
    /// cloned home/shared lists. Deterministic in the scenario seed, so
    /// repeated calls build identical generators.
    pub fn workload_parts(
        &self,
        user_homes: &[dynmds_namespace::InodeId],
        shared_roots: &[dynmds_namespace::InodeId],
        ns: &dynmds_namespace::Namespace,
    ) -> Box<dyn Workload + Send> {
        let mut rng = SimRng::seed_from_u64(self.seed ^ 0x0317);
        let mix = OpMix {
            stat: 20.0 + rng.unit() * 20.0,
            open: 8.0 + rng.unit() * 8.0,
            readdir: 3.0 + rng.unit() * 5.0,
            create: 6.0 + rng.unit() * 12.0,
            mkdir: 1.0 + rng.unit() * 3.0,
            unlink: 4.0 + rng.unit() * 8.0,
            rename: 2.0 + rng.unit() * 6.0,
            chmod: 1.0 + rng.unit() * 4.0,
            setattr: 2.0 + rng.unit() * 4.0,
            link: 2.0 + rng.unit() * 6.0,
        };
        let cfg = WorkloadConfig {
            locality: 0.7 + rng.unit() * 0.3,
            dir_affinity: 0.5 + rng.unit() * 0.5,
            navigate_prob: rng.unit() * 0.3,
            readdir_stats: (3, 10),
            dir_rename_fraction: rng.unit() * 0.4,
            dir_chmod_fraction: rng.unit() * 0.4,
            mix,
            seed: self.seed ^ 0x17,
        };
        let general =
            GeneralWorkload::new(cfg, self.n_clients as usize, user_homes, shared_roots, ns);
        if self.n_proxies > 0 {
            let hot_dir = shared_roots.first().copied().unwrap_or_else(|| ns.root());
            Box::new(LookupChurn::new(general, hot_dir, 0.3, self.seed ^ 0x9A1))
        } else {
            Box::new(general)
        }
    }
}

/// What one run produced.
#[derive(Debug)]
pub struct RunOutcome {
    /// Order-independent fingerprint of the final state and counters; two
    /// runs of the same scenario must produce the same digest.
    pub digest: u64,
    /// Cluster completed-op counter at stop.
    pub ops_completed: u64,
    /// Oracle divergences (empty = clean run).
    pub divergences: Vec<String>,
    /// Recorded op stream (empty unless recording was requested).
    pub trace: Trace,
    /// Per-client credentials, for replays.
    pub uids: Vec<u32>,
    /// Oracle checkpoints executed.
    pub checkpoints: u64,
    /// Ops answered by the proxy tier (0 when the scenario runs without
    /// proxies) — lets tests prove the coherence oracle saw real proxy
    /// traffic rather than vacuously passing.
    pub proxy_absorbed: u64,
}

/// Shares a generated workload's op stream with the harness so the trace
/// survives the simulation consuming the boxed workload.
struct SharedRecorder<W: Workload> {
    inner: W,
    records: Rc<RefCell<Vec<TraceRecord>>>,
}

impl<W: Workload> Workload for SharedRecorder<W> {
    fn next_op(&mut self, ns: &Namespace, client: ClientId, now: SimTime) -> Op {
        let op = self.inner.next_op(ns, client, now);
        self.records.borrow_mut().push(TraceRecord {
            client: client.0,
            at_us: now.as_micros(),
            op: TraceOp::from(&op),
        });
        op
    }

    fn clients(&self) -> usize {
        self.inner.clients()
    }

    fn uid_of(&self, client: ClientId) -> u32 {
        self.inner.uid_of(client)
    }
}

/// Oracle checkpoint spacing (virtual time).
const CHECKPOINT_EVERY: SimDuration = SimDuration::from_millis(500);

fn drive(sc: &Scenario, snap: Snapshot, wl: Box<dyn Workload>, uids: Vec<u32>) -> RunOutcome {
    let mut sim = Simulation::new(sc.config(), snap, wl);
    sim.cluster_mut().enable_dst_probe();
    let mut oracle = Oracle::new(sim.cluster());
    let deadline = SimTime::ZERO + SimDuration::from_micros(sc.horizon_us);
    let mut t = SimTime::ZERO;
    loop {
        t += CHECKPOINT_EVERY;
        sim.run_until(t);
        if !oracle.drain_and_check(sim.cluster_mut()) {
            break;
        }
        if sim.cluster().ops_completed >= sc.ops_target || t >= deadline {
            break;
        }
    }
    let cl = sim.cluster();
    let mut digest = oracle.model.digest();
    for (i, w) in [
        cl.ops_issued,
        cl.ops_completed,
        cl.migrations,
        cl.failures,
        cl.recoveries,
        cl.retries_total,
        cl.gave_up,
        cl.net_lost,
        cl.net_dup,
        cl.anchors.len() as u64,
    ]
    .into_iter()
    .enumerate()
    {
        digest = (digest ^ w.rotate_left(i as u32)).wrapping_mul(0x100_0000_01b3);
    }
    for node in &cl.nodes {
        digest = (digest ^ node.cache.len() as u64).wrapping_mul(0x100_0000_01b3);
    }
    if sc.n_proxies > 0 {
        for (i, w) in
            [cl.proxy_absorbed, cl.proxy_forwarded, cl.proxy_flushes].into_iter().enumerate()
        {
            digest = (digest ^ w.rotate_left(17 + i as u32)).wrapping_mul(0x100_0000_01b3);
        }
    }
    RunOutcome {
        digest,
        ops_completed: cl.ops_completed,
        divergences: std::mem::take(&mut oracle.divergences),
        trace: Trace::default(),
        uids,
        checkpoints: oracle.checkpoints,
        proxy_absorbed: cl.proxy_absorbed,
    }
}

/// Runs a scenario with its generated workload. With `record`, the full
/// op stream comes back in `RunOutcome::trace`, ready for the shrinker.
pub fn run_scenario(sc: &Scenario, record: bool) -> RunOutcome {
    let snap = sc.snapshot();
    let wl = sc.workload(&snap);
    let uids: Vec<u32> = (0..sc.n_clients).map(|c| wl.uid_of(ClientId(c))).collect();
    if !record {
        return drive(sc, snap, wl, uids);
    }
    let records = Rc::new(RefCell::new(Vec::new()));
    let boxed = Box::new(SharedRecorder { inner: wl, records: Rc::clone(&records) });
    let mut out = drive(sc, snap, boxed, uids);
    out.trace =
        Trace { snapshot_seed: sc.seed ^ 0xF5, n_clients: sc.n_clients, records: records.take() };
    out
}

/// Re-runs a scenario with its workload replaced by a recorded trace.
/// Clients that exhaust their records idle on fallback stats, so shrunk
/// traces still drive a well-formed closed loop for the whole horizon.
pub fn replay_trace(sc: &Scenario, trace: &Trace, uids: &[u32]) -> RunOutcome {
    let snap = sc.snapshot();
    let wl = Box::new(TraceReplay::new(trace, uids.to_vec()));
    drive(sc, snap, wl, uids.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_deterministic_and_strategy_sensitive() {
        let a = Scenario::from_seed(11, StrategyKind::DynamicSubtree, 500);
        let b = Scenario::from_seed(11, StrategyKind::DynamicSubtree, 500);
        assert_eq!(a.n_mds, b.n_mds);
        assert_eq!(a.think_us, b.think_us);
        assert_eq!(a.faults, b.faults);
        let c = Scenario::from_seed(11, StrategyKind::FileHash, 500);
        // Different strategy forks a different stream (fields may collide
        // by chance for one seed, but the full tuple should not).
        assert!(
            (a.n_mds, a.n_clients, a.think_us, a.retry_base_us)
                != (c.n_mds, c.n_clients, c.think_us, c.retry_base_us)
        );
    }

    #[test]
    fn scenario_bounds_hold() {
        let mut proxied = 0;
        let mut dense = 0;
        for seed in 0..50 {
            let sc = Scenario::from_seed(seed, StrategyKind::LazyHybrid, 1_000);
            assert!((2..=6).contains(&sc.n_mds));
            assert!(sc.n_clients >= 2 * u32::from(sc.n_mds));
            assert!(sc.cache_capacity >= 64);
            assert!((8_000_000..=60_000_000).contains(&sc.horizon_us));
            assert!(sc.retry_max >= 2);
            assert!(sc.n_proxies <= 3);
            assert!((8..56).contains(&sc.proxy_thr));
            proxied += u64::from(sc.n_proxies > 0);
            dense += u64::from(sc.force_dense);
        }
        // ~40% of seeds run with a proxy tier in front of the cluster.
        assert!(proxied > 5, "proxy draw never fires ({proxied}/50)");
        assert!(proxied < 45, "proxy draw always fires ({proxied}/50)");
        // ~25% of seeds run the sharded engine densely (skip disabled).
        assert!(dense > 3, "force-dense draw never fires ({dense}/50)");
        assert!(dense < 30, "force-dense draw always fires ({dense}/50)");
    }

    #[test]
    fn short_run_is_clean_and_repeatable() {
        let sc = Scenario::from_seed(3, StrategyKind::DynamicSubtree, 120);
        let a = run_scenario(&sc, true);
        assert!(a.divergences.is_empty(), "divergences: {:?}", a.divergences);
        assert!(a.checkpoints > 0);
        assert!(!a.trace.is_empty(), "recording captures the op stream");
        let b = run_scenario(&sc, true);
        assert_eq!(a.digest, b.digest, "same seed, same digest");
        assert_eq!(a.trace, b.trace, "same seed, same trace");
    }

    #[test]
    fn proxied_scenario_exercises_the_tier_and_stays_clean() {
        let mut sc = Scenario::from_seed(7, StrategyKind::DynamicSubtree, 400);
        sc.n_proxies = 2;
        sc.proxy_thr = 8;
        let out = run_scenario(&sc, true);
        assert!(out.divergences.is_empty(), "divergences: {:?}", out.divergences);
        assert!(out.proxy_absorbed > 0, "tier never engaged: the coherence oracle saw nothing");
        // The recorded trace carries the churn lookups, so a replay walks
        // the same proxy decisions and the oracle re-checks them.
        let rep = replay_trace(&sc, &out.trace, &out.uids);
        assert!(rep.divergences.is_empty());
        assert_eq!(rep.digest, out.digest);
        assert_eq!(rep.proxy_absorbed, out.proxy_absorbed);
    }

    #[test]
    fn replaying_a_recorded_trace_reproduces_the_run() {
        let sc = Scenario::from_seed(5, StrategyKind::StaticSubtree, 120);
        let rec = run_scenario(&sc, true);
        assert!(rec.divergences.is_empty());
        let rep = replay_trace(&sc, &rec.trace, &rec.uids);
        assert!(rep.divergences.is_empty());
        assert_eq!(rep.digest, rec.digest, "trace replay walks the same event sequence");
    }
}

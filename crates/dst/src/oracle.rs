//! The reference-model oracle.
//!
//! A [`RefModel`] is a deliberately *flat* model filesystem: a map of
//! inode attributes plus a dentry multimap, with none of the simulator's
//! partitioning, caching, journaling, or failover machinery. It consumes
//! the cluster's applied-op log (via the [`DstProbe`] hooks) and mirrors
//! exactly the namespace semantics of `dynmds_namespace::Namespace` —
//! including failure outcomes — so any disagreement between the two is a
//! bug in the simulator's service pipeline, not in the model's guess.
//!
//! An [`Oracle`] owns a model and, at every checkpoint, cross-checks the
//! cluster against it:
//!
//! * **namespace** — live-id sets, types, link counts, modes, owners and
//!   the full dentry map agree; every primary dentry is a real dentry;
//! * **authority** — the placement each strategy *should* compute
//!   (recomputed independently: delegation walk, path hash, or dentry
//!   hash) matches what the cluster's memoized partition answers;
//! * **anchor table** — the table's exact contents (entries, stored
//!   parents, reference counts) equal a from-scratch reconstruction over
//!   the multiply-linked files, and resolvability follows the namespace;
//! * **caches** — each node's cached set stays a parent-linked forest
//!   with consistent pin counts and holds only live inodes;
//! * **replication & liveness accounting** — replicated ids are live and
//!   subtree-only; `failures - recoveries` equals the dead-node count;
//! * **protocol invariants** — the probe's per-logical-op violations
//!   (hop monotonicity/bounds, retry monotonicity, exact give-up budget).

use std::collections::BTreeMap;

use dynmds_core::{AppliedOp, Cluster, DstRecord};
use dynmds_namespace::{FxHashMap, FxHashSet, InodeId, MdsId, Namespace};
use dynmds_partition::{dentry_hash, path_hash, StrategyKind};
use dynmds_workload::Op;

/// Cap on recorded divergence messages: one real bug can fire at every
/// checkpoint for thousands of ids; the first few tell the whole story.
const MAX_REPORTS: usize = 24;

#[derive(Clone, Debug, PartialEq, Eq)]
struct MEntry {
    is_dir: bool,
    nlink: u32,
    mode: u16,
    uid: u32,
}

/// The flat, strategy-agnostic model filesystem. See module docs.
pub struct RefModel {
    entries: FxHashMap<InodeId, MEntry>,
    children: FxHashMap<InodeId, BTreeMap<String, InodeId>>,
    /// Files the cluster's anchor policy should currently anchor: anchored
    /// on first extra link, released when the link count falls back to one
    /// or the inode dies.
    anchored: FxHashSet<InodeId>,
    /// Next inode id the namespace arena will allocate (ids are sequential
    /// and never reused, so successful creates are fully predictable).
    next_id: u64,
    root: InodeId,
    /// Ops the model accepted / rejected (both outcomes must agree with
    /// the cluster's).
    pub applied_ok: u64,
    /// Ops the model rejected.
    pub applied_failed: u64,
}

impl RefModel {
    /// Snapshots `ns` into a fresh model. Call before the simulation runs.
    pub fn from_namespace(ns: &Namespace) -> Self {
        let mut entries = FxHashMap::default();
        let mut children: FxHashMap<InodeId, BTreeMap<String, InodeId>> = FxHashMap::default();
        for id in ns.live_ids() {
            let ino = ns.inode(id).expect("live id has an inode");
            entries.insert(
                id,
                MEntry {
                    is_dir: ino.ftype.is_dir(),
                    nlink: ino.nlink,
                    mode: ino.perm.mode,
                    uid: ino.perm.uid,
                },
            );
            if ns.is_dir(id) {
                let map = ns
                    .children(id)
                    .expect("live dir iterates")
                    .map(|(n, c)| (n.to_string(), c))
                    .collect();
                children.insert(id, map);
            }
        }
        RefModel {
            entries,
            children,
            anchored: FxHashSet::default(),
            next_id: ns.id_bound(),
            root: ns.root(),
            applied_ok: 0,
            applied_failed: 0,
        }
    }

    fn alive(&self, id: InodeId) -> bool {
        self.entries.contains_key(&id)
    }

    fn is_dir(&self, id: InodeId) -> bool {
        self.entries.get(&id).map(|e| e.is_dir).unwrap_or(false)
    }

    fn lookup(&self, dir: InodeId, name: &str) -> Option<InodeId> {
        self.children.get(&dir).and_then(|m| m.get(name)).copied()
    }

    /// Live inodes in the model.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the model holds no live inodes (never true in practice —
    /// the root survives everything).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Order-independent digest of the model state, for run fingerprints.
    pub fn digest(&self) -> u64 {
        // Commutative fold (sum of per-item hashes): iteration order of the
        // hash maps must not leak into the digest.
        let mut acc = 0u64;
        for (&id, e) in &self.entries {
            acc = acc.wrapping_add(fnv_words(&[
                id.0,
                e.is_dir as u64,
                e.nlink as u64,
                e.mode as u64,
                e.uid as u64,
            ]));
        }
        for (&dir, map) in &self.children {
            for (name, &child) in map {
                let mut h = fnv_words(&[dir.0, child.0]);
                for b in name.bytes() {
                    h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
                }
                acc = acc.wrapping_add(h);
            }
        }
        for &a in &self.anchored {
            acc = acc.wrapping_add(fnv_words(&[a.0, 0xA2C402]));
        }
        acc ^ self.next_id
    }

    /// Applies one record from the cluster's applied-op log, checking that
    /// the cluster's outcome (applied / rejected, and the primary inode)
    /// matches what the model's own semantics dictate. Divergences are
    /// appended to `out`.
    pub fn apply(&mut self, rec: &AppliedOp, out: &mut Vec<String>) {
        let report = |msg: String, out: &mut Vec<String>| {
            if out.len() < MAX_REPORTS {
                out.push(msg);
            }
        };
        // What the model says should happen: Some(primary) on success.
        let verdict: Option<InodeId> = match &rec.op {
            Op::Stat(_) | Op::Open(_) | Op::Readdir(_) | Op::Lookup { .. } => {
                report(format!("applied-op log contains non-update {:?}", rec.op.kind()), out);
                return;
            }
            Op::Close(f) | Op::SetAttr(f) => self.alive(*f).then_some(*f),
            Op::Create { dir, name } | Op::Mkdir { dir, name } => {
                let ok = self.alive(*dir) && self.is_dir(*dir) && self.lookup(*dir, name).is_none();
                ok.then_some(InodeId(self.next_id))
            }
            Op::Unlink { dir, name } => {
                if !self.alive(*dir) || !self.is_dir(*dir) {
                    None
                } else {
                    match self.lookup(*dir, name) {
                        None => None,
                        Some(id) => {
                            // Directories must be empty; their only dentry
                            // is the primary one.
                            let dir_blocked = self.is_dir(id)
                                && self.children.get(&id).map(|m| !m.is_empty()).unwrap_or(false);
                            (!dir_blocked).then_some(id)
                        }
                    }
                }
            }
            Op::Rename { dir, name, new_name } => {
                if !self.alive(*dir) || !self.is_dir(*dir) {
                    None
                } else {
                    match self.lookup(*dir, name) {
                        None => None,
                        Some(id) if id == self.root => None,
                        Some(id) => {
                            let clobber = self.lookup(*dir, new_name).is_some() && new_name != name;
                            (!clobber).then_some(id)
                        }
                    }
                }
            }
            Op::Chmod { target, .. } => self.alive(*target).then_some(*target),
            Op::Link { target, dir, name } => {
                let ok = self.alive(*target)
                    && !self.is_dir(*target)
                    && self.alive(*dir)
                    && self.is_dir(*dir)
                    && self.lookup(*dir, name).is_none();
                ok.then_some(*target)
            }
        };

        if verdict.is_some() != rec.applied {
            report(
                format!(
                    "outcome mismatch at {}us: cluster {} {:?} (client {}) but the model says it must {}",
                    rec.at.as_micros(),
                    if rec.applied { "applied" } else { "rejected" },
                    rec.op,
                    rec.client.0,
                    if verdict.is_some() { "succeed" } else { "fail" },
                ),
                out,
            );
            self.applied_failed += 1;
            return;
        }
        let Some(primary) = verdict else {
            self.applied_failed += 1;
            return;
        };
        if rec.primary != Some(primary) {
            report(
                format!(
                    "primary-inode mismatch at {}us for {:?}: cluster touched {:?}, model expected {}",
                    rec.at.as_micros(),
                    rec.op,
                    rec.primary,
                    primary
                ),
                out,
            );
        }
        self.applied_ok += 1;

        // Mutate the model (shared-absorbed writes change only size/mtime,
        // which the model deliberately does not track).
        match &rec.op {
            Op::Close(_) | Op::SetAttr(_) => {}
            Op::Create { dir, name } | Op::Mkdir { dir, name } => {
                let is_dir = matches!(rec.op, Op::Mkdir { .. });
                let mode = if is_dir { 0o755 } else { 0o644 };
                self.entries.insert(primary, MEntry { is_dir, nlink: 1, mode, uid: rec.uid });
                if is_dir {
                    self.children.insert(primary, BTreeMap::new());
                }
                self.children.get_mut(dir).expect("dir checked").insert(name.clone(), primary);
                self.next_id += 1;
            }
            Op::Unlink { dir, name } => {
                self.children.get_mut(dir).expect("dir checked").remove(name);
                let e = self.entries.get_mut(&primary).expect("dentry target live");
                e.nlink -= 1;
                let nlink = e.nlink;
                if nlink == 0 {
                    self.entries.remove(&primary);
                    self.children.remove(&primary);
                }
                if nlink <= 1 {
                    self.anchored.remove(&primary);
                }
            }
            Op::Rename { dir, name, new_name } => {
                let map = self.children.get_mut(dir).expect("dir checked");
                let id = map.remove(name).expect("entry checked");
                map.insert(new_name.clone(), id);
            }
            Op::Chmod { mode, .. } => {
                self.entries.get_mut(&primary).expect("target live").mode = mode & 0o777;
            }
            Op::Link { target, dir, name } => {
                self.children.get_mut(dir).expect("dir checked").insert(name.clone(), *target);
                self.entries.get_mut(target).expect("target live").nlink += 1;
                self.anchored.insert(*target);
            }
            Op::Stat(_) | Op::Open(_) | Op::Readdir(_) | Op::Lookup { .. } => {
                unreachable!("rejected above")
            }
        }
    }
}

fn fnv_words(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &w in words {
        for b in w.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// The authority each strategy *should* assign to `id`, recomputed from
/// first principles (no `PlacementMemo`): the §4.3 entry-hash override
/// first, then a delegation walk (subtree strategies) or a path hash.
pub fn expected_authority(cl: &Cluster, id: InodeId) -> MdsId {
    let ns = &cl.ns;
    let n = cl.cfg.n_mds;
    if let Ok(Some(p)) = ns.parent(id) {
        if cl.is_dir_hashed(p) {
            if let Ok(name) = ns.name(id) {
                return dentry_hash(p, name, n);
            }
        }
    }
    match cl.cfg.strategy {
        StrategyKind::StaticSubtree
        | StrategyKind::DynamicSubtree
        | StrategyKind::ElasticSubtree => {
            let sub = cl.partition.as_subtree().expect("subtree strategy");
            if let Some(m) = sub.delegation_of(id) {
                return m;
            }
            for anc in ns.ancestors(id) {
                if let Some(m) = sub.delegation_of(anc) {
                    return m;
                }
            }
            sub.delegation_of(ns.root()).unwrap_or(MdsId(0))
        }
        StrategyKind::DirHash => {
            let key = if ns.is_dir(id) { id } else { ns.parent(id).ok().flatten().unwrap_or(id) };
            path_hash(&ns.path_of(key).unwrap_or_else(|_| "/".to_string()), n)
        }
        StrategyKind::FileHash | StrategyKind::LazyHybrid => {
            path_hash(&ns.path_of(id).unwrap_or_else(|_| "/".to_string()), n)
        }
    }
}

fn push(out: &mut Vec<String>, msg: String) {
    if out.len() < MAX_REPORTS {
        out.push(msg);
    }
}

/// Owns a [`RefModel`] and accumulates divergences across checkpoints.
pub struct Oracle {
    /// The model filesystem.
    pub model: RefModel,
    /// Everything found so far (capped; the first entries matter most).
    pub divergences: Vec<String>,
    /// Checkpoints executed.
    pub checkpoints: u64,
}

impl Oracle {
    /// Builds the oracle from a cluster that has not processed any events
    /// yet (the model snapshots the pristine namespace).
    pub fn new(cl: &Cluster) -> Self {
        Oracle { model: RefModel::from_namespace(&cl.ns), divergences: Vec::new(), checkpoints: 0 }
    }

    fn report(&mut self, msg: String) {
        push(&mut self.divergences, msg);
    }

    /// One checkpoint: drain the probe, roll the model forward, and sweep
    /// every invariant. Returns `true` when no divergence has been found
    /// so far (over the oracle's whole lifetime).
    pub fn drain_and_check(&mut self, cl: &mut Cluster) -> bool {
        self.checkpoints += 1;
        let (records, violations) = match cl.probe.as_deref_mut() {
            Some(p) => (p.take_records(), p.take_violations()),
            None => (Vec::new(), Vec::new()),
        };
        for v in violations {
            self.report(format!("protocol violation: {v}"));
        }
        // The record stream is in decision order, so every proxy-absorbed
        // answer is checked against the model state at exactly the
        // instant the proxy decided (its linearization point).
        let mut msgs = Vec::new();
        for rec in &records {
            match rec {
                DstRecord::Applied(a) => self.model.apply(a, &mut msgs),
                DstRecord::ProxyNegServe { at, client, dir, name } => {
                    if let Some(id) = self.model.lookup(*dir, name) {
                        push(
                            &mut msgs,
                            format!(
                                "stale negative at {}us: proxy told client {} that {dir}/{name} \
                                 is absent but the model resolves it to {id}",
                                at.as_micros(),
                                client.0
                            ),
                        );
                    }
                }
                DstRecord::ProxyReadServe { at, client, item } => {
                    if !self.model.alive(*item) {
                        push(
                            &mut msgs,
                            format!(
                                "stale read at {}us: proxy served {item} to client {} but the \
                                 model says it is dead",
                                at.as_micros(),
                                client.0
                            ),
                        );
                    }
                }
            }
        }
        for m in msgs {
            self.report(m);
        }
        self.sweep(cl);
        self.divergences.is_empty()
    }

    fn sweep(&mut self, cl: &Cluster) {
        self.sweep_namespace(cl);
        self.sweep_authority(cl);
        self.sweep_anchors(cl);
        self.sweep_caches(cl);
        self.sweep_replication(cl);
        self.sweep_liveness(cl);
    }

    fn sweep_namespace(&mut self, cl: &Cluster) {
        let model = &self.model;
        let out = &mut self.divergences;
        let ns = &cl.ns;
        let live: Vec<InodeId> = ns.live_ids().collect();
        if live.len() != model.entries.len() {
            push(
                out,
                format!(
                    "live-set size mismatch: namespace has {}, model has {}",
                    live.len(),
                    model.entries.len()
                ),
            );
        }
        for id in live {
            let Some(me) = model.entries.get(&id) else {
                push(out, format!("{id} is live in the namespace but dead in the model"));
                continue;
            };
            let ino = ns.inode(id).expect("live");
            if ino.ftype.is_dir() != me.is_dir
                || ino.nlink != me.nlink
                || ino.perm.mode != me.mode
                || ino.perm.uid != me.uid
            {
                push(out, format!(
                    "attribute mismatch on {id}: ns (dir={}, nlink={}, mode={:o}, uid={}) vs model (dir={}, nlink={}, mode={:o}, uid={})",
                    ino.ftype.is_dir(), ino.nlink, ino.perm.mode, ino.perm.uid,
                    me.is_dir, me.nlink, me.mode, me.uid
                ));
            }
            // Dentries of every live directory agree exactly.
            if me.is_dir {
                let ns_kids: BTreeMap<String, InodeId> =
                    ns.children(id).expect("live dir").map(|(n, c)| (n.to_string(), c)).collect();
                let model_kids = model.children.get(&id).cloned().unwrap_or_default();
                if ns_kids != model_kids {
                    push(
                        out,
                        format!(
                            "dentry mismatch under {id}: ns has {} entries, model has {}",
                            ns_kids.len(),
                            model_kids.len()
                        ),
                    );
                }
            }
            // The primary dentry must be a real dentry (catches stale
            // promotion bookkeeping).
            if id != ns.root() {
                let p = ns.parent(id).ok().flatten();
                let name = ns.name(id).ok().map(str::to_string);
                let resolves = match (p, &name) {
                    (Some(p), Some(n)) => ns.lookup(p, n).ok() == Some(id),
                    _ => false,
                };
                if !resolves {
                    push(
                        out,
                        format!(
                            "primary dentry of {id} ({p:?}/{name:?}) does not resolve back to it"
                        ),
                    );
                }
            }
        }
    }

    fn sweep_authority(&mut self, cl: &Cluster) {
        let n = cl.cfg.n_mds;
        // Delegations must target real servers and live directories.
        if let Some(sub) = cl.partition.as_subtree() {
            for (root, mds) in sub.delegations() {
                if mds.0 >= n {
                    self.report(format!("delegation of {root} targets nonexistent MDS {mds}"));
                }
            }
        }
        for id in cl.ns.live_ids() {
            let got = cl.authority_of(id);
            if got.0 >= n {
                self.report(format!("authority_of({id}) = {got} out of range (n_mds {n})"));
                continue;
            }
            let want = expected_authority(cl, id);
            if got != want {
                self.report(format!(
                    "authority mismatch on {id}: cluster says {got}, independent recompute says {want}"
                ));
            }
        }
    }

    fn sweep_anchors(&mut self, cl: &Cluster) {
        let model = &self.model;
        let out = &mut self.divergences;
        let ns = &cl.ns;
        // Reconstruct the whole table from scratch: one chain per anchored
        // file, counted through every ancestor.
        let mut want: FxHashMap<InodeId, (Option<InodeId>, u32)> = FxHashMap::default();
        for &a in &model.anchored {
            let alive = ns.is_alive(a);
            let nlink = ns.inode(a).map(|i| i.nlink).unwrap_or(0);
            if !alive || ns.is_dir(a) || nlink < 2 {
                push(out, format!(
                    "anchored id {a} should be a live multiply-linked file (alive={alive}, nlink={nlink})"
                ));
                continue;
            }
            let mut cur = a;
            loop {
                let parent = ns.parent(cur).ok().flatten();
                let e = want.entry(cur).or_insert((parent, 0));
                e.0 = parent;
                e.1 += 1;
                match parent {
                    Some(p) => cur = p,
                    None => break,
                }
            }
        }
        let table: FxHashMap<InodeId, (Option<InodeId>, u32)> =
            cl.anchors.iter().map(|(id, p, r)| (id, (p, r))).collect();
        if table.len() != want.len() {
            push(
                out,
                format!(
                    "anchor table has {} entries, reconstruction wants {}",
                    table.len(),
                    want.len()
                ),
            );
        }
        for (&id, &(wp, wr)) in &want {
            match table.get(&id) {
                None => push(out, format!("anchor entry for {id} missing")),
                Some(&(tp, tr)) if tp != wp || tr != wr => push(out, format!(
                    "anchor entry {id}: table (parent {tp:?}, refs {tr}) vs reconstruction (parent {wp:?}, refs {wr})"
                )),
                _ => {}
            }
        }
        // Resolvability: every anchored file's chain walks to the root
        // through the *current* namespace parents.
        for &a in &model.anchored {
            let want_chain: Vec<InodeId> = ns.ancestors(a).collect();
            match cl.anchors.resolve(a) {
                None => push(out, format!("anchored file {a} does not resolve")),
                Some(chain) if chain != want_chain => push(
                    out,
                    format!(
                        "anchor chain of {a} is {chain:?}, namespace ancestors are {want_chain:?}"
                    ),
                ),
                _ => {}
            }
        }
    }

    fn sweep_caches(&mut self, cl: &Cluster) {
        for (i, node) in cl.nodes.iter().enumerate() {
            let cache = &node.cache;
            let mut kids: FxHashMap<InodeId, u32> = FxHashMap::default();
            let mut count = 0usize;
            for id in cache.iter_ids() {
                count += 1;
                if !cl.ns.is_alive(id) {
                    self.report(format!("mds {i} caches dead inode {id}"));
                }
                match cache.parent_of(id) {
                    Some(Some(p)) => {
                        if !cache.contains(p) {
                            self.report(format!(
                                "mds {i}: cached {id} links to uncached parent {p} (cache not a tree)"
                            ));
                        }
                        *kids.entry(p).or_insert(0) += 1;
                    }
                    Some(None) => {}
                    None => self.report(format!("mds {i}: {id} iterated but not present")),
                }
            }
            if count != cache.len() {
                self.report(format!(
                    "mds {i}: cache len {} but {} ids iterated",
                    cache.len(),
                    count
                ));
            }
            for id in cache.iter_ids() {
                let pins = cache.pins(id).unwrap_or(0);
                let want = kids.get(&id).copied().unwrap_or(0);
                if pins != want {
                    self.report(format!(
                        "mds {i}: {id} pinned by {pins} but has {want} cached children"
                    ));
                }
            }
        }
    }

    fn sweep_replication(&mut self, cl: &Cluster) {
        let reps = cl.replicated_ids();
        if !reps.is_empty() && !cl.cfg.strategy.is_subtree() {
            self.report(format!(
                "{} ids replicated under non-subtree strategy {}",
                reps.len(),
                cl.cfg.strategy
            ));
        }
        for id in reps {
            if !cl.ns.is_alive(id) {
                self.report(format!("replicated set holds dead inode {id}"));
            }
        }
    }

    fn sweep_liveness(&mut self, cl: &Cluster) {
        let dead = cl.cfg.n_mds as u64 - cl.live_nodes() as u64;
        if cl.failures < cl.recoveries || cl.failures - cl.recoveries != dead {
            self.report(format!(
                "liveness accounting off: {} failures - {} recoveries != {} dead nodes",
                cl.failures, cl.recoveries, dead
            ));
        }
        if cl.ops_completed > cl.ops_issued {
            self.report(format!(
                "{} ops completed exceeds {} issued",
                cl.ops_completed, cl.ops_issued
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmds_namespace::Permissions;

    fn model_over(ns: &Namespace) -> RefModel {
        RefModel::from_namespace(ns)
    }

    #[test]
    fn model_mirrors_namespace_init() {
        let mut ns = Namespace::new();
        let d = ns.mkdir(ns.root(), "d", Permissions::directory(1)).unwrap();
        let f = ns.create_file(d, "f", Permissions::shared(1)).unwrap();
        let m = model_over(&ns);
        assert_eq!(m.len(), 3);
        assert!(m.alive(f));
        assert!(m.is_dir(d));
        assert_eq!(m.lookup(d, "f"), Some(f));
        assert_eq!(m.next_id, ns.id_bound());
    }

    #[test]
    fn digest_is_order_independent_and_state_sensitive() {
        let mut ns = Namespace::new();
        let d = ns.mkdir(ns.root(), "d", Permissions::directory(1)).unwrap();
        let m1 = model_over(&ns);
        let m2 = model_over(&ns);
        assert_eq!(m1.digest(), m2.digest());
        ns.create_file(d, "f", Permissions::shared(1)).unwrap();
        assert_ne!(model_over(&ns).digest(), m1.digest());
    }
}

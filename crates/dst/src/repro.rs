//! Plain-text repro files.
//!
//! A repro is everything needed to replay one divergence: the scenario
//! parameters, the (shrunk) concrete fault-event list, the per-client uid
//! table, and the (shrunk) op trace. The format is a hand-rolled
//! line-based text file — no JSON dependency, diff-friendly, and stable
//! enough to commit under `dst/repros/` where `tests/dst_repros.rs`
//! replays every file it finds.
//!
//! Floats (disk multipliers, loss probabilities) are stored as IEEE-754
//! bit patterns in hex, so a round trip is exact and a replay is
//! bit-identical to the run that produced the file.

use dynmds_core::{DiskScope, FaultEvent, FaultSchedule, NetFaultSpec};
use dynmds_event::{SimDuration, SimTime};
use dynmds_namespace::MdsId;
use dynmds_partition::StrategyKind;
use dynmds_storage::DiskFault;
use dynmds_workload::{Trace, TraceOp, TraceRecord};

use crate::scenario::{RunOutcome, Scenario};

/// First line of every repro file (skipped on parse so `note` holds only
/// the divergence context and a write→parse→write cycle is byte-stable).
const HEADER: &str = "# dynmds DST repro (written by `experiments torture`)";

/// One parsed (or to-be-written) repro. See module docs.
#[derive(Clone, Debug)]
pub struct Repro {
    /// The scenario, fault schedule flattened to explicit events.
    pub scenario: Scenario,
    /// The minimized op trace.
    pub trace: Trace,
    /// Per-client credentials captured from the original workload.
    pub uids: Vec<u32>,
    /// Human context: the first divergence message of the original run.
    pub note: String,
}

impl Repro {
    /// Replays the repro; a healthy tree returns no divergences.
    pub fn replay(&self) -> RunOutcome {
        crate::scenario::replay_trace(&self.scenario, &self.trace, &self.uids)
    }

    /// Serializes to the repro text format.
    pub fn to_text(&self) -> String {
        let sc = &self.scenario;
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        for line in self.note.lines() {
            out.push_str("# ");
            out.push_str(line);
            out.push('\n');
        }
        out.push_str("v 1\n");
        out.push_str(&format!(
            "scenario seed={} strategy={} n_mds={} n_clients={} target_items={} cache={} \
             dir_hash={} shared_writes={} leases={} think_us={} retry_base_us={} retry_max={} \
             heartbeat_us={} ops_target={} horizon_us={} proxies={} proxy_thr={} force_dense={}\n",
            sc.seed,
            sc.strategy.label(),
            sc.n_mds,
            sc.n_clients,
            sc.target_items,
            sc.cache_capacity,
            sc.dir_hash_threshold,
            u8::from(sc.shared_writes),
            u8::from(sc.client_leases),
            sc.think_us,
            sc.retry_base_us,
            sc.retry_max,
            sc.heartbeat_us,
            sc.ops_target,
            sc.horizon_us,
            sc.n_proxies,
            sc.proxy_thr,
            u8::from(sc.force_dense),
        ));
        assert!(sc.faults.churn.is_none(), "repros carry explicit events only (shrink first)");
        for ev in &sc.faults.events {
            match ev {
                FaultEvent::Crash { at, mds } => {
                    out.push_str(&format!("fault crash at_us={} mds={}\n", at.as_micros(), mds.0));
                }
                FaultEvent::Recover { at, mds } => {
                    out.push_str(&format!(
                        "fault recover at_us={} mds={}\n",
                        at.as_micros(),
                        mds.0
                    ));
                }
                FaultEvent::DiskDegrade { from, until, fault, scope } => {
                    let scope = match scope {
                        DiskScope::Osd => "osd",
                        DiskScope::Journal => "journal",
                        DiskScope::All => "all",
                    };
                    out.push_str(&format!(
                        "fault disk from_us={} until_us={} scope={} lat_bits={:#x} iops_bits={:#x} err_bits={:#x}\n",
                        from.as_micros(),
                        until.as_micros(),
                        scope,
                        fault.latency_mult.to_bits(),
                        fault.iops_mult.to_bits(),
                        fault.error_p.to_bits(),
                    ));
                }
                FaultEvent::NetFault { from, until, spec } => {
                    out.push_str(&format!(
                        "fault net from_us={} until_us={} loss_bits={:#x} dup_bits={:#x}\n",
                        from.as_micros(),
                        until.as_micros(),
                        spec.loss_p.to_bits(),
                        spec.dup_p.to_bits(),
                    ));
                }
            }
        }
        out.push_str("uids");
        for u in &self.uids {
            out.push_str(&format!(" {u}"));
        }
        out.push('\n');
        for rec in &self.trace.records {
            out.push_str(&format!("op {} {} ", rec.client, rec.at_us));
            // Generator names never contain whitespace; keep it that way.
            let check = |n: &str| {
                assert!(!n.contains(char::is_whitespace), "name {n:?} breaks the line format")
            };
            match &rec.op {
                TraceOp::Stat(i) => out.push_str(&format!("stat {i}")),
                TraceOp::Lookup { dir, name } => {
                    check(name);
                    out.push_str(&format!("lookup {dir} {name}"));
                }
                TraceOp::Open(i) => out.push_str(&format!("open {i}")),
                TraceOp::Close(i) => out.push_str(&format!("close {i}")),
                TraceOp::Readdir(i) => out.push_str(&format!("readdir {i}")),
                TraceOp::SetAttr(i) => out.push_str(&format!("setattr {i}")),
                TraceOp::Create { dir, name } => {
                    check(name);
                    out.push_str(&format!("create {dir} {name}"));
                }
                TraceOp::Mkdir { dir, name } => {
                    check(name);
                    out.push_str(&format!("mkdir {dir} {name}"));
                }
                TraceOp::Unlink { dir, name } => {
                    check(name);
                    out.push_str(&format!("unlink {dir} {name}"));
                }
                TraceOp::Rename { dir, name, new_name } => {
                    check(name);
                    check(new_name);
                    out.push_str(&format!("rename {dir} {name} {new_name}"));
                }
                TraceOp::Chmod { target, mode } => out.push_str(&format!("chmod {target} {mode}")),
                TraceOp::Link { target, dir, name } => {
                    check(name);
                    out.push_str(&format!("link {target} {dir} {name}"));
                }
            }
            out.push('\n');
        }
        out.push_str("end\n");
        out
    }

    /// Parses the text format back. Unknown keys and malformed lines are
    /// hard errors — a repro that parses differently than it was written
    /// would silently test the wrong thing.
    pub fn parse(text: &str) -> Result<Repro, String> {
        let mut scenario: Option<Scenario> = None;
        let mut events: Vec<FaultEvent> = Vec::new();
        let mut uids: Vec<u32> = Vec::new();
        let mut records: Vec<TraceRecord> = Vec::new();
        let mut note = String::new();
        let mut saw_end = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let err = |m: String| format!("line {}: {m}", lineno + 1);
            if line.is_empty() {
                continue;
            }
            if let Some(comment) = line.strip_prefix('#') {
                if line == HEADER {
                    continue;
                }
                if !note.is_empty() {
                    note.push('\n');
                }
                note.push_str(comment.trim());
                continue;
            }
            let mut words = line.split_whitespace();
            match words.next().unwrap() {
                "v" => {
                    let v = words.next().ok_or_else(|| err("missing version".into()))?;
                    if v != "1" {
                        return Err(err(format!("unsupported repro version {v}")));
                    }
                }
                "scenario" => {
                    let mut kv = std::collections::HashMap::new();
                    for w in words {
                        let (k, v) = w
                            .split_once('=')
                            .ok_or_else(|| err(format!("expected key=value, got `{w}`")))?;
                        kv.insert(k.to_string(), v.to_string());
                    }
                    scenario = Some(parse_scenario(&kv).map_err(err)?);
                }
                "fault" => {
                    let kind = words.next().ok_or_else(|| err("missing fault kind".into()))?;
                    let mut kv = std::collections::HashMap::new();
                    for w in words {
                        let (k, v) = w
                            .split_once('=')
                            .ok_or_else(|| err(format!("expected key=value, got `{w}`")))?;
                        kv.insert(k.to_string(), v.to_string());
                    }
                    events.push(parse_fault(kind, &kv).map_err(err)?);
                }
                "uids" => {
                    for w in words {
                        uids.push(w.parse().map_err(|e| err(format!("bad uid `{w}`: {e}")))?);
                    }
                }
                "op" => {
                    records.push(parse_op(&mut words).map_err(err)?);
                }
                "end" => saw_end = true,
                other => return Err(err(format!("unknown directive `{other}`"))),
            }
        }
        if !saw_end {
            return Err("truncated repro: no `end` line".into());
        }
        let mut scenario = scenario.ok_or("missing `scenario` line")?;
        scenario.faults = FaultSchedule { events, churn: None };
        if uids.len() != scenario.n_clients as usize {
            return Err(format!(
                "uid table has {} entries for {} clients",
                uids.len(),
                scenario.n_clients
            ));
        }
        let trace =
            Trace { snapshot_seed: scenario.seed ^ 0xF5, n_clients: scenario.n_clients, records };
        Ok(Repro { scenario, trace, uids, note })
    }
}

fn parse_strategy(label: &str) -> Result<StrategyKind, String> {
    StrategyKind::ALL
        .into_iter()
        .find(|s| s.label() == label)
        .ok_or_else(|| format!("unknown strategy `{label}`"))
}

fn parse_scenario(kv: &std::collections::HashMap<String, String>) -> Result<Scenario, String> {
    fn get<'a>(
        kv: &'a std::collections::HashMap<String, String>,
        k: &str,
    ) -> Result<&'a str, String> {
        kv.get(k).map(String::as_str).ok_or_else(|| format!("scenario key `{k}` missing"))
    }
    fn num<T: std::str::FromStr>(
        kv: &std::collections::HashMap<String, String>,
        k: &str,
    ) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        get(kv, k)?.parse().map_err(|e| format!("scenario key `{k}`: {e}"))
    }
    // Pre-proxy repro files have no `proxies=`/`proxy_thr=` keys; they
    // replay with the tier off, exactly as they originally ran.
    fn num_or<T: std::str::FromStr>(
        kv: &std::collections::HashMap<String, String>,
        k: &str,
        default: T,
    ) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match kv.get(k) {
            Some(v) => v.parse().map_err(|e| format!("scenario key `{k}`: {e}")),
            None => Ok(default),
        }
    }
    Ok(Scenario {
        seed: num(kv, "seed")?,
        strategy: parse_strategy(get(kv, "strategy")?)?,
        n_mds: num(kv, "n_mds")?,
        n_clients: num(kv, "n_clients")?,
        target_items: num(kv, "target_items")?,
        cache_capacity: num(kv, "cache")?,
        dir_hash_threshold: num(kv, "dir_hash")?,
        shared_writes: num::<u8>(kv, "shared_writes")? != 0,
        client_leases: num::<u8>(kv, "leases")? != 0,
        think_us: num(kv, "think_us")?,
        retry_base_us: num(kv, "retry_base_us")?,
        retry_max: num(kv, "retry_max")?,
        heartbeat_us: num(kv, "heartbeat_us")?,
        ops_target: num(kv, "ops_target")?,
        horizon_us: num(kv, "horizon_us")?,
        n_proxies: num_or(kv, "proxies", 0)?,
        proxy_thr: num_or(kv, "proxy_thr", 24)?,
        // Pre-skip repro files have no `force_dense=` key; they replay
        // with skipping on, which is behavior-identical by construction.
        force_dense: num_or::<u8>(kv, "force_dense", 0)? != 0,
        faults: FaultSchedule::default(), // filled by the caller
    })
}

fn parse_fault(
    kind: &str,
    kv: &std::collections::HashMap<String, String>,
) -> Result<FaultEvent, String> {
    fn num(kv: &std::collections::HashMap<String, String>, k: &str) -> Result<u64, String> {
        let v = kv.get(k).ok_or_else(|| format!("fault key `{k}` missing"))?;
        if let Some(hex) = v.strip_prefix("0x") {
            u64::from_str_radix(hex, 16).map_err(|e| format!("fault key `{k}`: {e}"))
        } else {
            v.parse().map_err(|e| format!("fault key `{k}`: {e}"))
        }
    }
    let at = |k: &str| -> Result<SimTime, String> {
        Ok(SimTime::ZERO + SimDuration::from_micros(num(kv, k)?))
    };
    match kind {
        "crash" => Ok(FaultEvent::Crash { at: at("at_us")?, mds: MdsId(num(kv, "mds")? as u16) }),
        "recover" => {
            Ok(FaultEvent::Recover { at: at("at_us")?, mds: MdsId(num(kv, "mds")? as u16) })
        }
        "disk" => {
            let scope = match kv.get("scope").map(String::as_str) {
                Some("osd") => DiskScope::Osd,
                Some("journal") => DiskScope::Journal,
                Some("all") => DiskScope::All,
                other => return Err(format!("bad disk scope {other:?}")),
            };
            Ok(FaultEvent::DiskDegrade {
                from: at("from_us")?,
                until: at("until_us")?,
                fault: DiskFault {
                    latency_mult: f64::from_bits(num(kv, "lat_bits")?),
                    iops_mult: f64::from_bits(num(kv, "iops_bits")?),
                    error_p: f64::from_bits(num(kv, "err_bits")?),
                },
                scope,
            })
        }
        "net" => Ok(FaultEvent::NetFault {
            from: at("from_us")?,
            until: at("until_us")?,
            spec: NetFaultSpec {
                loss_p: f64::from_bits(num(kv, "loss_bits")?),
                dup_p: f64::from_bits(num(kv, "dup_bits")?),
            },
        }),
        other => Err(format!("unknown fault kind `{other}`")),
    }
}

fn parse_op<'a, I: Iterator<Item = &'a str>>(words: &mut I) -> Result<TraceRecord, String> {
    let mut next = |what: &str| words.next().ok_or_else(|| format!("op missing {what}"));
    let client: u32 = next("client")?.parse().map_err(|e| format!("op client: {e}"))?;
    let at_us: u64 = next("time")?.parse().map_err(|e| format!("op time: {e}"))?;
    let kind = next("kind")?;
    let mut id = |what: &str| -> Result<u64, String> {
        next(what)?.parse().map_err(|e| format!("op {what}: {e}"))
    };
    let op = match kind {
        "stat" => TraceOp::Stat(id("target")?),
        "lookup" => TraceOp::Lookup { dir: id("dir")?, name: next("name")?.to_string() },
        "open" => TraceOp::Open(id("target")?),
        "close" => TraceOp::Close(id("target")?),
        "readdir" => TraceOp::Readdir(id("target")?),
        "setattr" => TraceOp::SetAttr(id("target")?),
        "create" => TraceOp::Create { dir: id("dir")?, name: next("name")?.to_string() },
        "mkdir" => TraceOp::Mkdir { dir: id("dir")?, name: next("name")?.to_string() },
        "unlink" => TraceOp::Unlink { dir: id("dir")?, name: next("name")?.to_string() },
        "rename" => TraceOp::Rename {
            dir: id("dir")?,
            name: next("old")?.to_string(),
            new_name: next("new")?.to_string(),
        },
        "chmod" => TraceOp::Chmod {
            target: id("target")?,
            mode: next("mode")?.parse().map_err(|e| format!("op mode: {e}"))?,
        },
        "link" => TraceOp::Link {
            target: id("target")?,
            dir: id("dir")?,
            name: next("name")?.to_string(),
        },
        other => return Err(format!("unknown op kind `{other}`")),
    };
    Ok(TraceRecord { client, at_us, op })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Repro {
        let mut sc = Scenario::from_seed(9, StrategyKind::DynamicSubtree, 400);
        // A non-default value so the round-trip below proves the key
        // actually travels through the text format.
        sc.force_dense = true;
        sc.faults = FaultSchedule {
            events: vec![
                FaultEvent::Crash {
                    at: SimTime::ZERO + SimDuration::from_micros(2_500_000),
                    mds: MdsId(1),
                },
                FaultEvent::Recover {
                    at: SimTime::ZERO + SimDuration::from_micros(3_100_000),
                    mds: MdsId(1),
                },
                FaultEvent::DiskDegrade {
                    from: SimTime::ZERO + SimDuration::from_micros(1_000),
                    until: SimTime::ZERO + SimDuration::from_micros(9_000),
                    fault: DiskFault { latency_mult: 3.25, iops_mult: 0.5, error_p: 0.0125 },
                    scope: DiskScope::Journal,
                },
                FaultEvent::NetFault {
                    from: SimTime::ZERO + SimDuration::from_micros(5_000),
                    until: SimTime::ZERO + SimDuration::from_micros(7_000),
                    spec: NetFaultSpec { loss_p: 0.031_4, dup_p: 0.001 },
                },
            ],
            churn: None,
        };
        let records = vec![
            TraceRecord { client: 0, at_us: 100, op: TraceOp::Stat(4) },
            TraceRecord {
                client: 2,
                at_us: 150,
                op: TraceOp::Lookup { dir: 5, name: "nl3".into() },
            },
            TraceRecord {
                client: 1,
                at_us: 200,
                op: TraceOp::Create { dir: 5, name: "f1".into() },
            },
            TraceRecord {
                client: 2,
                at_us: 300,
                op: TraceOp::Rename { dir: 5, name: "f1".into(), new_name: "f2".into() },
            },
            TraceRecord { client: 0, at_us: 400, op: TraceOp::Chmod { target: 4, mode: 0o640 } },
            TraceRecord {
                client: 1,
                at_us: 500,
                op: TraceOp::Link { target: 4, dir: 5, name: "h".into() },
            },
        ];
        let uids = (0..sc.n_clients).map(|c| c % 3).collect();
        Repro {
            trace: Trace { snapshot_seed: sc.seed ^ 0xF5, n_clients: sc.n_clients, records },
            scenario: sc,
            uids,
            note: "outcome mismatch at 12us: something".into(),
        }
    }

    #[test]
    fn text_round_trip_is_exact() {
        let r = sample();
        let text = r.to_text();
        let back = Repro::parse(&text).expect("parses");
        assert_eq!(back.trace, r.trace);
        assert_eq!(back.uids, r.uids);
        assert_eq!(back.scenario.faults, r.scenario.faults);
        assert_eq!(back.scenario.seed, r.scenario.seed);
        assert_eq!(back.scenario.strategy, r.scenario.strategy);
        assert_eq!(back.scenario.think_us, r.scenario.think_us);
        assert_eq!(back.scenario.horizon_us, r.scenario.horizon_us);
        assert_eq!(back.scenario.n_proxies, r.scenario.n_proxies);
        assert_eq!(back.scenario.proxy_thr, r.scenario.proxy_thr);
        assert_eq!(back.scenario.force_dense, r.scenario.force_dense);
        // Serializing the parse reproduces the text byte-for-byte.
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn float_bits_survive_exactly() {
        let r = sample();
        let back = Repro::parse(&r.to_text()).unwrap();
        let FaultEvent::DiskDegrade { fault, .. } = back.scenario.faults.events[2] else {
            panic!("event order preserved");
        };
        assert_eq!(fault.latency_mult.to_bits(), 3.25f64.to_bits());
        assert_eq!(fault.error_p.to_bits(), 0.0125f64.to_bits());
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(Repro::parse("nonsense\nend\n").is_err());
        assert!(Repro::parse("v 2\nend\n").is_err(), "unknown version");
        assert!(Repro::parse("v 1\n").is_err(), "missing end");
        let r = sample();
        let text = r.to_text().replace("strategy=DynamicSubtree", "strategy=Bogus");
        assert!(Repro::parse(&text).is_err(), "unknown strategy");
    }

    #[test]
    fn pre_proxy_repros_parse_with_the_tier_off() {
        let r = sample();
        // Strip the proxy and skip keys the way an old repro file would
        // lack them.
        let text = r
            .to_text()
            .lines()
            .map(|l| {
                if l.starts_with("scenario ") {
                    l.split_whitespace()
                        .filter(|w| {
                            !w.starts_with("proxies=")
                                && !w.starts_with("proxy_thr=")
                                && !w.starts_with("force_dense=")
                        })
                        .collect::<Vec<_>>()
                        .join(" ")
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let back = Repro::parse(&text).expect("old format parses");
        assert_eq!(back.scenario.n_proxies, 0);
        assert!(!back.scenario.force_dense, "pre-skip repros replay with skipping on");
    }
}

//! The `experiments torture` subcommand: run seeded fuzz scenarios
//! against the oracle, shrink any divergence, and write repro files.
//!
//! ```text
//! experiments torture [--seeds N] [--seed-base B] [--ops K]
//!                     [--strategy NAME|all] [--out DIR]
//!                     [--shrink-budget P] [--no-repeat-check]
//!                     [--threads T] [--shards K] [--proxy P]
//!                     [--force-dense]
//! ```
//!
//! Output is derived entirely from simulation results (no wall-clock, no
//! paths that vary run-to-run), so two invocations with the same flags
//! print byte-identical reports — CI runs the command twice and `cmp`s.
//! Exit code 0 = every scenario clean (and the repeated seed's digest
//! stable); 1 = divergence or digest instability; 2 = usage error.

use std::io::Write as _;

use dynmds_event::SimDuration;
use dynmds_harness::parallel::parallel_map_threads;
use dynmds_partition::StrategyKind;

use crate::repro::Repro;
use crate::scenario::{run_scenario, Scenario};
use crate::shrink::shrink;

struct TortureArgs {
    seeds: u64,
    seed_base: u64,
    ops: u64,
    out_dir: String,
    strategies: Vec<StrategyKind>,
    shrink_budget: u64,
    repeat_check: bool,
    /// Worker-thread override; `None` defers to `DYNMDS_THREADS` or
    /// detected parallelism. Reports are byte-identical either way.
    threads: Option<usize>,
    /// When > 0, additionally run every scenario through the sharded
    /// engine at 1 shard and at `shards` shards and require byte-equal
    /// reports; a mismatch counts as a failure.
    shards: usize,
    /// Proxy-count override: force every scenario to run with exactly
    /// this many hotspot proxies instead of the seeded draw (0 forces
    /// the tier off everywhere).
    proxy: Option<u16>,
    /// Override the seeded skip-on/off draw: run every scenario's
    /// sharded cross-check densely (execute every conservative window).
    force_dense: bool,
}

fn parse_args(args: &[String]) -> Result<TortureArgs, String> {
    let mut out = TortureArgs {
        seeds: 200,
        seed_base: 1,
        ops: 2_000,
        out_dir: "dst/repros".to_string(),
        strategies: StrategyKind::ALL.to_vec(),
        shrink_budget: 250,
        repeat_check: true,
        threads: None,
        shards: 0,
        proxy: None,
        force_dense: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |what: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{what} needs a value"))
        };
        match arg.as_str() {
            "--seeds" => {
                out.seeds = val("--seeds")?.parse().map_err(|e| format!("--seeds: {e}"))?
            }
            "--seed-base" => {
                out.seed_base =
                    val("--seed-base")?.parse().map_err(|e| format!("--seed-base: {e}"))?
            }
            "--ops" => out.ops = val("--ops")?.parse().map_err(|e| format!("--ops: {e}"))?,
            "--out" => out.out_dir = val("--out")?.clone(),
            "--shrink-budget" => {
                out.shrink_budget =
                    val("--shrink-budget")?.parse().map_err(|e| format!("--shrink-budget: {e}"))?
            }
            "--no-repeat-check" => out.repeat_check = false,
            "--threads" => {
                let t: usize = val("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?;
                if t == 0 {
                    return Err("--threads must be positive".into());
                }
                out.threads = Some(t);
            }
            "--shards" => {
                let k: usize = val("--shards")?.parse().map_err(|e| format!("--shards: {e}"))?;
                if k == 0 {
                    return Err("--shards must be positive".into());
                }
                out.shards = k;
            }
            "--proxy" => {
                out.proxy = Some(val("--proxy")?.parse().map_err(|e| format!("--proxy: {e}"))?)
            }
            "--force-dense" => out.force_dense = true,
            "--strategy" => {
                let v = val("--strategy")?;
                if v != "all" {
                    let s = StrategyKind::ALL
                        .into_iter()
                        .find(|s| s.label().eq_ignore_ascii_case(v))
                        .ok_or_else(|| format!("unknown strategy `{v}`"))?;
                    out.strategies = vec![s];
                }
            }
            other => return Err(format!("unknown torture flag `{other}`")),
        }
    }
    if out.seeds == 0 {
        return Err("--seeds must be positive".into());
    }
    Ok(out)
}

struct ScenarioResult {
    strategy: StrategyKind,
    seed: u64,
    digest: u64,
    ops_completed: u64,
    checkpoints: u64,
    /// `Some` when the run diverged: the finished repro text plus a
    /// summary of the shrink.
    failure: Option<Failure>,
    /// `Some` when the sharded cross-check found the report differing
    /// between 1 shard and K shards (only run with `--shards`).
    shard_mismatch: Option<String>,
}

struct Failure {
    first_divergence: String,
    repro_text: String,
    ops_after: usize,
    probes: u64,
}

/// Runs the scenario through the sharded engine at one shard and at
/// `shards`, and reports the first line where the two reports differ.
/// Both runs are single-threaded — the torture pipeline already fans
/// scenarios across cores, so nesting worker pools would only thrash.
fn shard_cross_check(sc: &Scenario, shards: usize) -> Option<String> {
    let render = |k: usize| {
        let snap = sc.snapshot();
        let homes = snap.user_homes.clone();
        let shared = snap.shared_roots.clone();
        let factory =
            |ns: &dynmds_namespace::Namespace| -> Box<dyn dynmds_workload::Workload + Send> {
                sc.workload_parts(&homes, &shared, ns)
            };
        let sim = dynmds_core::ShardedSimulation::new(sc.config(), k, Some(1), snap, &factory);
        // The fault schedule is front-loaded into the scenario horizon;
        // cap the virtual span so the cross-check stays a smoke-sized
        // addition to the oracle run it rides along with.
        let span = SimDuration::from_micros(sc.horizon_us.min(6_000_000));
        sim.run_measured(SimDuration::from_micros(0), span).render()
    };
    let (one, many) = (render(1), render(shards));
    (one != many).then(|| {
        one.lines()
            .zip(many.lines())
            .find(|(a, b)| a != b)
            .map(|(a, b)| format!("1 shard: `{a}` vs {shards} shards: `{b}`"))
            .unwrap_or_else(|| "reports differ in length".to_string())
    })
}

fn run_one(sc: &Scenario, shrink_budget: u64, shards: usize) -> ScenarioResult {
    let out = run_scenario(sc, true);
    let failure = (!out.divergences.is_empty()).then(|| {
        let (min_sc, min_trace, stats) = shrink(sc, &out.trace, &out.uids, shrink_budget);
        let note = out.divergences.join("\n");
        let repro = Repro { scenario: min_sc, trace: min_trace, uids: out.uids.clone(), note };
        Failure {
            first_divergence: out.divergences[0].clone(),
            repro_text: repro.to_text(),
            ops_after: stats.ops_after,
            probes: stats.probes,
        }
    });
    let shard_mismatch = (shards > 0).then(|| shard_cross_check(sc, shards)).flatten();
    ScenarioResult {
        strategy: sc.strategy,
        seed: sc.seed,
        digest: out.digest,
        ops_completed: out.ops_completed,
        checkpoints: out.checkpoints,
        failure,
        shard_mismatch,
    }
}

/// Entry point for `experiments torture`. Returns the process exit code.
pub fn run_torture(args: &[String]) -> i32 {
    let args = match parse_args(args) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("torture: {e}");
            return 2;
        }
    };

    let scenarios: Vec<Scenario> = (0..args.seeds)
        .flat_map(|i| {
            let seed = args.seed_base + i;
            args.strategies.iter().map(move |&s| {
                let mut sc = Scenario::from_seed(seed, s, args.ops);
                if let Some(p) = args.proxy {
                    sc.n_proxies = p;
                }
                if args.force_dense {
                    sc.force_dense = true;
                }
                sc
            })
        })
        .collect();

    println!(
        "torture: {} scenarios ({} seeds x {} strategies), target {} ops each",
        scenarios.len(),
        args.seeds,
        args.strategies.len(),
        args.ops
    );

    // Publish `--threads` process-wide so nested pool fan-outs (shard
    // stepping inside the cross-check, any later sub-run in this
    // process) honor it too, not just the top-level map below.
    dynmds_harness::parallel::set_thread_override(args.threads);

    if args.shards > 0 {
        dynmds_harness::parallel::install_shard_driver();
        println!("torture: sharded cross-check on ({} shards vs 1)", args.shards);
    }

    let results = parallel_map_threads(&scenarios, args.threads, |sc| {
        run_one(sc, args.shrink_budget, args.shards)
    });

    let mut failures = 0u64;
    for s in &args.strategies {
        let (mut runs, mut ops, mut cps, mut diverged) = (0u64, 0u64, 0u64, 0u64);
        let mut shard_mismatches = 0u64;
        let mut digest = 0u64;
        for r in results.iter().filter(|r| r.strategy == *s) {
            runs += 1;
            ops += r.ops_completed;
            cps += r.checkpoints;
            diverged += u64::from(r.failure.is_some());
            shard_mismatches += u64::from(r.shard_mismatch.is_some());
            digest = digest.wrapping_mul(0x100_0000_01b3) ^ r.digest;
        }
        let shard_note = if args.shards > 0 {
            format!(", {shard_mismatches} shard mismatches")
        } else {
            String::new()
        };
        println!(
            "  {:>14}: {runs} runs, {ops} ops, {cps} checkpoints, {diverged} divergences{shard_note}, digest {digest:#018x}",
            s.label()
        );
        failures += diverged + shard_mismatches;
    }

    for r in results.iter().filter(|r| r.shard_mismatch.is_some()) {
        println!(
            "SHARD MISMATCH seed={} strategy={}: {}",
            r.seed,
            r.strategy.label(),
            r.shard_mismatch.as_ref().unwrap()
        );
    }

    for r in results.iter().filter(|r| r.failure.is_some()) {
        let f = r.failure.as_ref().unwrap();
        let path = format!("{}/repro_{}_{}.txt", args.out_dir, r.strategy.label(), r.seed);
        println!(
            "DIVERGENCE seed={} strategy={}: {}",
            r.seed,
            r.strategy.label(),
            f.first_divergence
        );
        println!("  shrunk to {} ops in {} replays -> {path}", f.ops_after, f.probes);
        if let Err(e) = std::fs::create_dir_all(&args.out_dir).and_then(|()| {
            std::fs::File::create(&path).and_then(|mut fh| fh.write_all(f.repro_text.as_bytes()))
        }) {
            eprintln!("torture: writing {path}: {e}");
        }
    }

    let mut unstable = false;
    if args.repeat_check {
        // Determinism spot-check: re-run the first scenario end to end and
        // require a byte-identical digest.
        let sc = &scenarios[0];
        let again = run_scenario(sc, false);
        let first = &results[0];
        if again.digest == first.digest {
            println!(
                "repeat-check: seed {} {} digest {:#018x} stable",
                sc.seed,
                sc.strategy.label(),
                first.digest
            );
        } else {
            println!(
                "repeat-check FAILED: seed {} {} digest {:#018x} vs {:#018x}",
                sc.seed,
                sc.strategy.label(),
                first.digest,
                again.digest
            );
            unstable = true;
        }
    }

    let total_ops: u64 = results.iter().map(|r| r.ops_completed).sum();
    println!("torture: {} scenarios, {total_ops} ops total, {failures} divergences", results.len());
    i32::from(failures > 0 || unstable)
}

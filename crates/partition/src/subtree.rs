//! Subtree delegation table (§4.1).
//!
//! "The file system is partitioned by delegating authority for subtrees of
//! the hierarchy to different metadata servers. Delegations may be nested:
//! /usr may be assigned to one MDS … while /usr/local is reassigned to
//! another. In the absence of an explicit subtree assignment, the entire
//! directory tree nested beneath a point is assumed to reside on the same
//! server."
//!
//! The table is shared cluster state in the simulator (in the real system
//! it is replicated via the delegation protocol); authority lookup walks
//! from the item toward the root and stops at the first delegation point.

use std::cell::RefCell;

use dynmds_namespace::{FxHashMap, InodeId, MdsId, Namespace};

use crate::hash::{path_hash, try_path_hash_of};
use crate::memo::PlacementMemo;

/// Delegation table for subtree-partitioned clusters.
pub struct SubtreePartition {
    delegations: FxHashMap<InodeId, MdsId>,
    root: InodeId,
    /// Memoized `(governing delegation point, authority)` per inode; see
    /// [`PlacementMemo`] for the invalidation scheme.
    memo: PlacementMemo<(InodeId, MdsId)>,
    /// Scratch for the ids visited by a resolving walk, so steady-state
    /// lookups never allocate.
    walk_scratch: RefCell<Vec<InodeId>>,
}

impl SubtreePartition {
    /// Creates a table with the whole hierarchy delegated to `root_mds`.
    pub fn new(root: InodeId, root_mds: MdsId) -> Self {
        let mut delegations = FxHashMap::default();
        delegations.insert(root, root_mds);
        SubtreePartition {
            delegations,
            root,
            memo: PlacementMemo::new(),
            walk_scratch: RefCell::new(Vec::new()),
        }
    }

    /// The paper's initial partition (§5.1): "hashing directories near the
    /// root of the hierarchy" — every directory at depth ≤ `max_depth`
    /// becomes a delegation point placed by path hash.
    pub fn initial_near_root(ns: &Namespace, n_mds: u16, max_depth: usize) -> Self {
        assert!(n_mds > 0, "cluster must be non-empty");
        let mut part = SubtreePartition::new(ns.root(), path_hash("/", n_mds));
        for id in ns.live_ids() {
            if !ns.is_dir(id) || id == ns.root() {
                continue;
            }
            if let Ok(d) = ns.depth(id) {
                if d <= max_depth {
                    // The `""` fallback mirrors the old `unwrap_or_default`
                    // on a dead id; live_ids() makes it unreachable.
                    let m = try_path_hash_of(ns, id, n_mds).unwrap_or_else(|| path_hash("", n_mds));
                    part.delegations.insert(id, m);
                }
            }
        }
        part
    }

    /// The authoritative MDS for `id`: the delegation at the nearest
    /// enclosing delegation point. O(1) amortized via the memo.
    pub fn authority(&self, ns: &Namespace, id: InodeId) -> MdsId {
        self.resolve(ns, id).1
    }

    /// The delegation point governing `id` (itself, or nearest ancestor).
    /// O(1) amortized via the memo.
    pub fn subtree_root_of(&self, ns: &Namespace, id: InodeId) -> InodeId {
        self.resolve(ns, id).0
    }

    /// Resolves `(governing delegation point, authority)` for `id`,
    /// memoized. Semantics match the naive walk exactly: check `id`'s own
    /// explicit delegation first, then each ancestor nearest-first, then
    /// fall back to the root delegation.
    fn resolve(&self, ns: &Namespace, id: InodeId) -> (InodeId, MdsId) {
        let fallback =
            || (self.root, self.delegations.get(&self.root).copied().unwrap_or(MdsId(0)));
        if !ns.is_alive(id) {
            // Tombstones bypass the memo (their death bumps no epoch):
            // an explicit delegation still answers, the ancestor walk is
            // empty, everything else falls back to the root.
            if let Some(&m) = self.delegations.get(&id) {
                return (id, m);
            }
            return fallback();
        }
        let stamp = self.memo.stamp(ns);
        if let Some(hit) = self.memo.get(id, stamp) {
            return hit;
        }
        // Walk toward the root, recording the misses; stop at the first
        // explicit delegation or already-memoized ancestor.
        let mut walked = self.walk_scratch.borrow_mut();
        walked.clear();
        let mut cur = id;
        let answer = loop {
            if let Some(&m) = self.delegations.get(&cur) {
                self.memo.set(cur, stamp, (cur, m));
                break (cur, m);
            }
            if let Some(hit) = self.memo.get(cur, stamp) {
                break hit;
            }
            walked.push(cur);
            match ns.parent(cur) {
                Ok(Some(p)) => cur = p,
                // Unreachable for live ids (the root is always
                // delegated), but stay total.
                _ => break fallback(),
            }
        };
        self.memo.fill(&walked, stamp, answer);
        answer
    }

    /// Delegates the subtree rooted at `dir` to `mds`. Returns the
    /// previous explicit delegation of `dir`, if any.
    pub fn delegate(&mut self, dir: InodeId, mds: MdsId) -> Option<MdsId> {
        self.memo.bump();
        self.delegations.insert(dir, mds)
    }

    /// Removes an explicit delegation, merging the subtree back into its
    /// parent delegation. The root delegation cannot be removed.
    pub fn undelegate(&mut self, dir: InodeId) -> Option<MdsId> {
        if dir == self.root {
            return None;
        }
        self.memo.bump();
        self.delegations.remove(&dir)
    }

    /// Explicit delegation of `dir`, if any.
    pub fn delegation_of(&self, dir: InodeId) -> Option<MdsId> {
        self.delegations.get(&dir).copied()
    }

    /// Iterates all delegation points.
    pub fn delegations(&self) -> impl Iterator<Item = (InodeId, MdsId)> + '_ {
        self.delegations.iter().map(|(&d, &m)| (d, m))
    }

    /// Delegation points currently assigned to `mds`, sorted for
    /// determinism.
    pub fn delegations_of(&self, mds: MdsId) -> Vec<InodeId> {
        let mut v: Vec<InodeId> =
            self.delegations.iter().filter(|(_, &m)| m == mds).map(|(&d, _)| d).collect();
        v.sort();
        v
    }

    /// Number of delegation points. Each carries a small overhead (the
    /// authority must pin prefix inodes for it, §4.3), so balancers try to
    /// keep this low.
    pub fn delegation_count(&self) -> usize {
        self.delegations.len()
    }

    /// Live items governed by each MDS — O(n) sweep used by tests and
    /// experiment setup, not the hot path.
    pub fn partition_sizes(&self, ns: &Namespace, n_mds: u16) -> Vec<u64> {
        let mut sizes = vec![0u64; n_mds as usize];
        for id in ns.live_ids() {
            sizes[self.authority(ns, id).index()] += 1;
        }
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmds_namespace::{NamespaceSpec, Permissions};

    fn tree() -> (Namespace, InodeId, InodeId, InodeId) {
        // /usr/local/bin
        let mut ns = Namespace::new();
        let usr = ns.mkdir(ns.root(), "usr", Permissions::directory(0)).unwrap();
        let local = ns.mkdir(usr, "local", Permissions::directory(0)).unwrap();
        let bin = ns.mkdir(local, "bin", Permissions::directory(0)).unwrap();
        (ns, usr, local, bin)
    }

    #[test]
    fn root_delegation_covers_everything() {
        let (ns, usr, local, bin) = tree();
        let p = SubtreePartition::new(ns.root(), MdsId(3));
        for id in [ns.root(), usr, local, bin] {
            assert_eq!(p.authority(&ns, id), MdsId(3));
        }
    }

    #[test]
    fn nested_delegations_override() {
        // The paper's own example: /usr on one MDS, /usr/local reassigned.
        let (ns, usr, local, bin) = tree();
        let mut p = SubtreePartition::new(ns.root(), MdsId(0));
        p.delegate(usr, MdsId(1));
        p.delegate(local, MdsId(2));
        assert_eq!(p.authority(&ns, usr), MdsId(1));
        assert_eq!(p.authority(&ns, local), MdsId(2));
        assert_eq!(p.authority(&ns, bin), MdsId(2), "nested under /usr/local");
        assert_eq!(p.authority(&ns, ns.root()), MdsId(0));
    }

    #[test]
    fn undelegate_merges_back() {
        let (ns, usr, local, bin) = tree();
        let mut p = SubtreePartition::new(ns.root(), MdsId(0));
        p.delegate(usr, MdsId(1));
        p.delegate(local, MdsId(2));
        assert_eq!(p.undelegate(local), Some(MdsId(2)));
        assert_eq!(p.authority(&ns, bin), MdsId(1), "falls back to /usr");
        assert_eq!(p.undelegate(ns.root()), None, "root delegation immovable");
    }

    #[test]
    fn subtree_root_of_finds_governing_point() {
        let (ns, usr, local, bin) = tree();
        let mut p = SubtreePartition::new(ns.root(), MdsId(0));
        p.delegate(usr, MdsId(1));
        assert_eq!(p.subtree_root_of(&ns, bin), usr);
        assert_eq!(p.subtree_root_of(&ns, usr), usr);
        assert_eq!(p.subtree_root_of(&ns, ns.root()), ns.root());
        p.delegate(local, MdsId(2));
        assert_eq!(p.subtree_root_of(&ns, bin), local);
    }

    #[test]
    fn initial_partition_spreads_near_root_dirs() {
        let snap = NamespaceSpec { users: 60, seed: 5, ..Default::default() }.generate();
        let n = 6u16;
        let p = SubtreePartition::initial_near_root(&snap.ns, n, 2);
        // Home dirs are at depth 2; each should be a delegation point.
        for &h in &snap.user_homes {
            assert!(p.delegation_of(h).is_some(), "home not delegated");
        }
        let sizes = p.partition_sizes(&snap.ns, n);
        let total: u64 = sizes.iter().sum();
        assert_eq!(total, snap.ns.total_items());
        let mean = total / n as u64;
        for &s in &sizes {
            assert!(s > mean / 4 && s < mean * 3, "initial partition badly imbalanced: {sizes:?}");
        }
    }

    #[test]
    fn delegations_of_lists_per_mds() {
        let (ns, usr, local, _) = tree();
        let mut p = SubtreePartition::new(ns.root(), MdsId(0));
        p.delegate(usr, MdsId(1));
        p.delegate(local, MdsId(1));
        let d = p.delegations_of(MdsId(1));
        assert_eq!(d, vec![usr, local]);
        assert_eq!(p.delegations_of(MdsId(0)), vec![ns.root()]);
        assert_eq!(p.delegation_count(), 3);
    }

    #[test]
    fn transfer_moves_whole_subtree() {
        let (ns, usr, _, bin) = tree();
        let mut p = SubtreePartition::new(ns.root(), MdsId(0));
        p.delegate(usr, MdsId(1));
        assert_eq!(p.authority(&ns, bin), MdsId(1));
        let prev = p.delegate(usr, MdsId(4));
        assert_eq!(prev, Some(MdsId(1)));
        assert_eq!(p.authority(&ns, bin), MdsId(4));
    }
}

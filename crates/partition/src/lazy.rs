//! Lazy Hybrid metadata management (§3.1.3, after Brandt et al. 2003).
//!
//! LH hashes metadata by full path name (like file hashing) but avoids
//! path traversal by merging "the net effect of the permission check into
//! each file metadata record" — a dual-entry access-control list holding
//! the effective access information for the whole path.
//!
//! The price is *lazy update propagation*: changing an ancestor
//! directory's permissions, or moving/renaming a directory, invalidates
//! the embedded information of every nested file. Rather than updating
//! them eagerly ("changes to directories containing lots of items could
//! trigger potentially millions of updates"), each MDS logs the event and
//! applies it to nested items as they are next requested — "update cost
//! can be amortized to one network trip per affected file".
//!
//! This module tracks those pending updates with a generation counter:
//! every directory event gets a generation; every file remembers the last
//! generation it has applied; an access pays for each newer event on a
//! strict ancestor.

use dynmds_namespace::{FxHashMap, InodeId, MdsId, Namespace};

use crate::hash::{path_hash, try_path_hash_of};
use crate::memo::PlacementMemo;

/// What kind of directory event must be propagated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LazyUpdateKind {
    /// An ancestor's permissions changed: the file's dual-entry ACL must
    /// be recomputed (one network trip).
    Permission,
    /// An ancestor moved/renamed: the file's path hash changed, so its
    /// metadata must migrate to a new MDS (one network trip).
    Move,
}

#[derive(Clone, Copy, Debug)]
struct PendingUpdate {
    dir: InodeId,
    gen: u64,
    kind: LazyUpdateKind,
}

/// Counts of updates applied by one access.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PendingStats {
    /// ACL recomputations performed.
    pub permission_updates: u64,
    /// Metadata migrations performed.
    pub moves: u64,
}

impl PendingStats {
    /// Total propagation work units (network trips).
    pub fn total(&self) -> u64 {
        self.permission_updates + self.moves
    }
}

/// Lazy Hybrid placement + pending-update log.
pub struct LazyHybrid {
    n: u16,
    next_gen: u64,
    pending: Vec<PendingUpdate>,
    applied: FxHashMap<InodeId, u64>,
    lifetime: PendingStats,
    /// Memoized authority per inode; stamped by `move_epoch` only, since
    /// LH placement is a pure hash of the item's current path.
    memo: PlacementMemo<MdsId>,
}

impl LazyHybrid {
    /// Creates LH state for an `n`-server cluster.
    pub fn new(n: u16) -> Self {
        assert!(n > 0, "cluster must be non-empty");
        LazyHybrid {
            n,
            next_gen: 1,
            pending: Vec::new(),
            applied: FxHashMap::default(),
            lifetime: PendingStats::default(),
            memo: PlacementMemo::new(),
        }
    }

    /// Cluster size.
    pub fn cluster_size(&self) -> u16 {
        self.n
    }

    /// The authoritative MDS for `id` — hash of the item's full *current*
    /// path (stale placements are what the `Move` updates repair).
    pub fn authority(&self, ns: &Namespace, id: InodeId) -> MdsId {
        if !ns.is_alive(id) {
            return path_hash("/", self.n);
        }
        let stamp = self.memo.stamp(ns);
        if let Some(m) = self.memo.get(id, stamp) {
            return m;
        }
        let m = try_path_hash_of(ns, id, self.n).unwrap_or_else(|| path_hash("/", self.n));
        self.memo.set(id, stamp, m);
        m
    }

    /// Records a permission change on directory `dir`; every file nested
    /// beneath it must eventually recompute its ACL. Returns the event's
    /// generation.
    pub fn on_dir_permission_change(&mut self, dir: InodeId) -> u64 {
        self.push(dir, LazyUpdateKind::Permission)
    }

    /// Records a move/rename of directory `dir`; every item nested beneath
    /// it must eventually migrate (path hash changed). Returns the event's
    /// generation.
    pub fn on_dir_move(&mut self, dir: InodeId) -> u64 {
        self.push(dir, LazyUpdateKind::Move)
    }

    fn push(&mut self, dir: InodeId, kind: LazyUpdateKind) -> u64 {
        let gen = self.next_gen;
        self.next_gen += 1;
        self.pending.push(PendingUpdate { dir, gen, kind });
        gen
    }

    /// The newest generation issued so far.
    pub fn current_gen(&self) -> u64 {
        self.next_gen - 1
    }

    /// Number of logged (unpruned) events.
    pub fn pending_events(&self) -> usize {
        self.pending.len()
    }

    /// Counts the updates an access to `id` would have to apply, without
    /// applying them.
    pub fn pending_for(&self, ns: &Namespace, id: InodeId) -> PendingStats {
        let seen = self.applied.get(&id).copied().unwrap_or(0);
        let mut stats = PendingStats::default();
        for u in &self.pending {
            if u.gen > seen && ns.is_ancestor(u.dir, id) {
                match u.kind {
                    LazyUpdateKind::Permission => stats.permission_updates += 1,
                    LazyUpdateKind::Move => stats.moves += 1,
                }
            }
        }
        stats
    }

    /// Applies all pending updates for `id` (the work an MDS does when the
    /// item is next requested) and returns what it cost.
    pub fn apply_pending(&mut self, ns: &Namespace, id: InodeId) -> PendingStats {
        let stats = self.pending_for(ns, id);
        self.applied.insert(id, self.current_gen());
        self.lifetime.permission_updates += stats.permission_updates;
        self.lifetime.moves += stats.moves;
        stats
    }

    /// Lifetime totals of applied propagation work.
    pub fn lifetime_stats(&self) -> PendingStats {
        self.lifetime
    }

    /// Drops events with generation ≤ `gen` — used once a background sweep
    /// has pushed an update to every affected record ("as long as updates
    /// are eventually applied more quickly than they are created"). Items
    /// whose applied generation predates the cut keep correct behaviour
    /// because their next access can at worst over-apply (idempotent).
    pub fn prune_through(&mut self, gen: u64) {
        self.pending.retain(|u| u.gen > gen);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmds_namespace::Permissions;

    fn tree() -> (Namespace, InodeId, InodeId, InodeId, InodeId) {
        // /a/b/f and /c/g
        let mut ns = Namespace::new();
        let a = ns.mkdir(ns.root(), "a", Permissions::directory(1)).unwrap();
        let b = ns.mkdir(a, "b", Permissions::directory(1)).unwrap();
        let f = ns.create_file(b, "f", Permissions::shared(1)).unwrap();
        let c = ns.mkdir(ns.root(), "c", Permissions::directory(1)).unwrap();
        (ns, a, b, f, c)
    }

    #[test]
    fn no_events_no_pending() {
        let (ns, _, _, f, _) = tree();
        let lh = LazyHybrid::new(4);
        assert_eq!(lh.pending_for(&ns, f), PendingStats::default());
    }

    #[test]
    fn permission_change_reaches_descendants_only() {
        let (mut ns, a, _, f, c) = tree();
        let g = ns.create_file(c, "g", Permissions::shared(1)).unwrap();
        let mut lh = LazyHybrid::new(4);
        lh.on_dir_permission_change(a);
        assert_eq!(lh.pending_for(&ns, f).permission_updates, 1);
        assert_eq!(lh.pending_for(&ns, g).total(), 0, "sibling tree unaffected");
        assert_eq!(lh.pending_for(&ns, a).total(), 0, "the dir itself updates eagerly");
    }

    #[test]
    fn apply_clears_pending_and_accumulates() {
        let (ns, a, b, f, _) = tree();
        let mut lh = LazyHybrid::new(4);
        lh.on_dir_permission_change(a);
        lh.on_dir_move(b);
        let applied = lh.apply_pending(&ns, f);
        assert_eq!(applied.permission_updates, 1);
        assert_eq!(applied.moves, 1);
        assert_eq!(applied.total(), 2);
        assert_eq!(lh.pending_for(&ns, f).total(), 0, "second access is clean");
        assert_eq!(lh.lifetime_stats().total(), 2);
    }

    #[test]
    fn later_events_hit_again() {
        let (ns, a, _, f, _) = tree();
        let mut lh = LazyHybrid::new(4);
        lh.on_dir_permission_change(a);
        lh.apply_pending(&ns, f);
        lh.on_dir_permission_change(a);
        assert_eq!(lh.pending_for(&ns, f).permission_updates, 1);
    }

    #[test]
    fn stacked_events_all_count() {
        let (ns, a, b, f, _) = tree();
        let mut lh = LazyHybrid::new(4);
        lh.on_dir_permission_change(a);
        lh.on_dir_permission_change(b);
        lh.on_dir_move(a);
        let p = lh.pending_for(&ns, f);
        assert_eq!(p.permission_updates, 2);
        assert_eq!(p.moves, 1);
    }

    #[test]
    fn generations_are_monotone() {
        let (_, a, b, _, _) = tree();
        let mut lh = LazyHybrid::new(4);
        let g1 = lh.on_dir_permission_change(a);
        let g2 = lh.on_dir_move(b);
        assert!(g2 > g1);
        assert_eq!(lh.current_gen(), g2);
        assert_eq!(lh.pending_events(), 2);
    }

    #[test]
    fn prune_discards_old_events() {
        let (ns, a, b, f, _) = tree();
        let mut lh = LazyHybrid::new(4);
        let g1 = lh.on_dir_permission_change(a);
        lh.on_dir_move(b);
        lh.prune_through(g1);
        assert_eq!(lh.pending_events(), 1);
        // A fresh file only sees the surviving event.
        assert_eq!(lh.pending_for(&ns, f).total(), 1);
    }

    #[test]
    fn authority_follows_current_path() {
        let (mut ns, a, _, f, c) = tree();
        let lh = LazyHybrid::new(64);
        let before = lh.authority(&ns, f);
        ns.rename(a, "b", c, "b").unwrap();
        let after = lh.authority(&ns, f);
        assert_ne!(before, after, "move rehashes (64 buckets)");
    }
}

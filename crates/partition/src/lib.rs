//! Metadata partitioning strategies.
//!
//! The paper evaluates five ways of distributing a file-system hierarchy
//! across a metadata-server cluster (§3, §4):
//!
//! | Strategy | Placement | Locality | Adapts |
//! |---|---|---|---|
//! | `StaticSubtree` | manual/initial subtree delegation | hierarchical | no |
//! | `DynamicSubtree` | subtree delegation, rebalanced at runtime | hierarchical | yes |
//! | `DirHash` | hash of containing-directory path | per-directory | via hash |
//! | `FileHash` | hash of full path | none | via hash |
//! | `LazyHybrid` | hash of full path + embedded effective ACLs | none | via hash |
//!
//! This crate implements the *placement* machinery: the delegation tree
//! used by the subtree strategies ([`subtree`]), the path-hash placements
//! ([`hash`]), and Lazy Hybrid's dual-entry ACL with lazy update
//! propagation ([`lazy`]). The runtime behaviour built on top — load
//! balancing, replication, traffic control — lives in `dynmds-core`.

pub mod hash;
pub mod kind;
pub mod lazy;
pub mod memo;
pub mod subtree;

pub use hash::{dentry_hash, path_hash, try_path_hash_of, HashGranularity, HashPartition};
pub use kind::StrategyKind;
pub use lazy::{LazyHybrid, LazyUpdateKind, PendingStats};
pub use memo::PlacementMemo;
pub use subtree::SubtreePartition;

use dynmds_namespace::{InodeId, MdsId, Namespace};

/// A configured placement: answers "who is authoritative for item X".
pub enum Partition {
    /// Subtree delegation (static or dynamic — the dynamic strategy
    /// mutates the delegation table at runtime).
    Subtree(SubtreePartition),
    /// Path hashing (directory- or file-granularity).
    Hash(HashPartition),
    /// Lazy Hybrid: file-granularity hashing plus lazy ACL updates.
    LazyHybrid(LazyHybrid),
}

impl Partition {
    /// The authoritative MDS for `id`.
    pub fn authority(&self, ns: &Namespace, id: InodeId) -> MdsId {
        match self {
            Partition::Subtree(s) => s.authority(ns, id),
            Partition::Hash(h) => h.authority(ns, id),
            Partition::LazyHybrid(l) => l.authority(ns, id),
        }
    }

    /// Builds the standard initial placement for `kind` over `ns` with
    /// `n_mds` servers, as the paper's simulations do (§5.1): subtree
    /// strategies hash directories near the root across the cluster.
    pub fn initial(kind: StrategyKind, ns: &Namespace, n_mds: u16) -> Partition {
        match kind {
            StrategyKind::StaticSubtree
            | StrategyKind::DynamicSubtree
            | StrategyKind::ElasticSubtree => {
                Partition::Subtree(SubtreePartition::initial_near_root(ns, n_mds, 2))
            }
            StrategyKind::DirHash => {
                Partition::Hash(HashPartition::new(n_mds, HashGranularity::Directory))
            }
            StrategyKind::FileHash => {
                Partition::Hash(HashPartition::new(n_mds, HashGranularity::File))
            }
            StrategyKind::LazyHybrid => Partition::LazyHybrid(LazyHybrid::new(n_mds)),
        }
    }

    /// The subtree table, when this is a subtree partition.
    pub fn as_subtree_mut(&mut self) -> Option<&mut SubtreePartition> {
        match self {
            Partition::Subtree(s) => Some(s),
            _ => None,
        }
    }

    /// The subtree table, immutable.
    pub fn as_subtree(&self) -> Option<&SubtreePartition> {
        match self {
            Partition::Subtree(s) => Some(s),
            _ => None,
        }
    }

    /// Lazy Hybrid state, when applicable.
    pub fn as_lazy_mut(&mut self) -> Option<&mut LazyHybrid> {
        match self {
            Partition::LazyHybrid(l) => Some(l),
            _ => None,
        }
    }

    /// Lazy Hybrid state, immutable.
    pub fn as_lazy(&self) -> Option<&LazyHybrid> {
        match self {
            Partition::LazyHybrid(l) => Some(l),
            _ => None,
        }
    }
}

//! Epoch-stamped memoization of placement lookups.
//!
//! Authority resolution is on the simulator's per-operation hot path:
//! subtree placement walks the ancestor chain to the nearest delegation
//! point, and the hash placements build the item's full path string before
//! hashing it. Both answers are pure functions of (a) the placement's own
//! state and (b) the shape of the namespace above the item — so they can
//! be cached per inode and invalidated wholesale when either input
//! changes.
//!
//! [`PlacementMemo`] is that cache: a dense table indexed by
//! `InodeId::index()` (ids are allocated sequentially and never reused),
//! each slot carrying the *stamp* it was computed under. The current
//! stamp is `local_epoch + ns.move_epoch()`:
//!
//! * `local_epoch` counts placement-state changes (delegation /
//!   undelegation for subtree partitions; constant for the stateless hash
//!   placements), and
//! * [`Namespace::move_epoch`] counts primary-dentry moves — the only
//!   namespace mutations that can change an existing item's ancestor
//!   chain or path.
//!
//! Both counters are monotonic, so their sum strictly increases on any
//! relevant change and a stale slot can never be mistaken for a fresh
//! one. Slots start at stamp 0, which is unreachable (`local_epoch`
//! starts at 1), so "never computed" and "stale" are the same case.
//! There is no per-slot invalidation and no hook the cluster has to
//! remember to call — correctness falls out of reading the stamp on
//! every lookup.
//!
//! Tombstoned (dead) ids must **bypass** the memo: the naive resolution
//! rules treat them specially (a dead id's ancestor walk is empty) and
//! their slots would otherwise outlive the id's death, since deaths do
//! not bump any epoch.

use std::cell::{Cell, RefCell};

use dynmds_namespace::{InodeId, Namespace};

/// A dense, epoch-stamped cache of per-inode placement answers.
///
/// `T` is the memoized answer — e.g. `MdsId` for hash placements, or
/// `(InodeId, MdsId)` (governing delegation point + authority) for
/// subtree placements. Interior mutability keeps the owning partition's
/// read API (`authority(&self, ..)`) unchanged.
pub struct PlacementMemo<T> {
    /// `(stamp, answer)` per `InodeId::index()`; stamp 0 = never valid.
    slots: RefCell<Vec<(u64, T)>>,
    /// Placement-state epoch; starts at 1 so stamps are always ≥ 1.
    epoch: Cell<u64>,
}

impl<T: Copy> PlacementMemo<T> {
    /// An empty memo at local epoch 1.
    pub fn new() -> Self {
        PlacementMemo { slots: RefCell::new(Vec::new()), epoch: Cell::new(1) }
    }

    /// Invalidates every slot by advancing the local epoch. Call on any
    /// placement-state change (delegate, undelegate).
    pub fn bump(&self) {
        self.epoch.set(self.epoch.get() + 1);
    }

    /// The stamp a slot must carry to be valid right now.
    #[inline]
    pub fn stamp(&self, ns: &Namespace) -> u64 {
        self.epoch.get() + ns.move_epoch()
    }

    /// The memoized answer for `id`, if computed under `stamp`.
    #[inline]
    pub fn get(&self, id: InodeId, stamp: u64) -> Option<T> {
        match self.slots.borrow().get(id.index()) {
            Some(&(s, v)) if s == stamp => Some(v),
            _ => None,
        }
    }

    /// Records `val` for `id` under `stamp`, growing the table as needed.
    pub fn set(&self, id: InodeId, stamp: u64, val: T) {
        let mut slots = self.slots.borrow_mut();
        let idx = id.index();
        if idx >= slots.len() {
            // Stamp 0 marks the padding slots invalid; the payload is
            // arbitrary and never read.
            slots.resize(idx + 1, (0, val));
        }
        slots[idx] = (stamp, val);
    }

    /// Records `val` for every id in `ids` under `stamp` — one borrow for
    /// a whole resolved walk.
    pub fn fill(&self, ids: &[InodeId], stamp: u64, val: T) {
        if ids.is_empty() {
            return;
        }
        let mut slots = self.slots.borrow_mut();
        let max_idx = ids.iter().map(|i| i.index()).max().unwrap();
        if max_idx >= slots.len() {
            slots.resize(max_idx + 1, (0, val));
        }
        for &id in ids {
            slots[id.index()] = (stamp, val);
        }
    }
}

impl<T: Copy> Default for PlacementMemo<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmds_namespace::{MdsId, Permissions};

    #[test]
    fn miss_then_hit_then_stale() {
        let ns = Namespace::new();
        let memo: PlacementMemo<MdsId> = PlacementMemo::new();
        let s = memo.stamp(&ns);
        assert_eq!(memo.get(InodeId(0), s), None, "cold slot misses");
        memo.set(InodeId(0), s, MdsId(7));
        assert_eq!(memo.get(InodeId(0), s), Some(MdsId(7)));
        memo.bump();
        let s2 = memo.stamp(&ns);
        assert_ne!(s, s2);
        assert_eq!(memo.get(InodeId(0), s2), None, "bump invalidates");
    }

    #[test]
    fn namespace_moves_invalidate() {
        let mut ns = Namespace::new();
        let a = ns.mkdir(ns.root(), "a", Permissions::directory(0)).unwrap();
        let b = ns.mkdir(ns.root(), "b", Permissions::directory(0)).unwrap();
        let f = ns.create_file(a, "f", Permissions::shared(0)).unwrap();
        let memo: PlacementMemo<MdsId> = PlacementMemo::new();
        let s = memo.stamp(&ns);
        memo.set(f, s, MdsId(3));
        ns.rename(a, "f", b, "f").unwrap();
        assert_eq!(memo.get(f, memo.stamp(&ns)), None, "rename staled the slot");
    }

    #[test]
    fn creations_do_not_invalidate() {
        let mut ns = Namespace::new();
        let a = ns.mkdir(ns.root(), "a", Permissions::directory(0)).unwrap();
        let memo: PlacementMemo<MdsId> = PlacementMemo::new();
        let s = memo.stamp(&ns);
        memo.set(a, s, MdsId(1));
        ns.create_file(a, "new", Permissions::shared(0)).unwrap();
        ns.mkdir(a, "sub", Permissions::directory(0)).unwrap();
        assert_eq!(memo.get(a, memo.stamp(&ns)), Some(MdsId(1)), "creations are free");
    }

    #[test]
    fn fill_covers_a_walk() {
        let ns = Namespace::new();
        let memo: PlacementMemo<MdsId> = PlacementMemo::new();
        let s = memo.stamp(&ns);
        let ids = [InodeId(5), InodeId(2), InodeId(9)];
        memo.fill(&ids, s, MdsId(4));
        for id in ids {
            assert_eq!(memo.get(id, s), Some(MdsId(4)));
        }
        assert_eq!(memo.get(InodeId(3), s), None, "untouched slots stay cold");
    }
}

//! Strategy taxonomy shared by the simulator and the experiment harness.

use std::fmt;

/// The five strategies compared in the paper's evaluation, plus the
/// elastic extension (ROADMAP item 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Subtree delegation fixed at the initial partition (§3.1.1).
    StaticSubtree,
    /// Subtree delegation rebalanced at runtime — the paper's contribution
    /// (§4).
    DynamicSubtree,
    /// Hash of the containing directory's path (§3.1.2).
    DirHash,
    /// Hash of the full file path (§3.1.2).
    FileHash,
    /// Lazy Hybrid: file-path hashing with dual-entry ACLs (§3.1.3).
    LazyHybrid,
    /// Dynamic subtree partitioning *plus* λFS-style elastic node
    /// add/remove driven by the same heartbeat load signal. Not part of
    /// the paper's evaluation, so deliberately excluded from [`ALL`] —
    /// every figure that sweeps `ALL` keeps its golden output.
    ///
    /// [`ALL`]: StrategyKind::ALL
    ElasticSubtree,
}

impl StrategyKind {
    /// The paper's five strategies, in the order its figures list them.
    /// [`ElasticSubtree`](StrategyKind::ElasticSubtree) is compared
    /// against these in the `elasticity` experiment but is not listed
    /// here (the paper's figures predate it).
    pub const ALL: [StrategyKind; 5] = [
        StrategyKind::StaticSubtree,
        StrategyKind::DynamicSubtree,
        StrategyKind::DirHash,
        StrategyKind::FileHash,
        StrategyKind::LazyHybrid,
    ];

    /// The label used in the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            StrategyKind::StaticSubtree => "StaticSubtree",
            StrategyKind::DynamicSubtree => "DynamicSubtree",
            StrategyKind::DirHash => "DirHash",
            StrategyKind::FileHash => "FileHash",
            StrategyKind::LazyHybrid => "LazyHybrid",
            StrategyKind::ElasticSubtree => "ElasticSubtree",
        }
    }

    /// Whether this strategy keeps directory contents together and can use
    /// the embedded-inode directory-object layout (§4.5, §5.3); file-level
    /// hashing scatters siblings and must use a per-inode table.
    pub fn embeds_inodes(self) -> bool {
        match self {
            StrategyKind::StaticSubtree
            | StrategyKind::DynamicSubtree
            | StrategyKind::DirHash
            | StrategyKind::ElasticSubtree => true,
            StrategyKind::FileHash | StrategyKind::LazyHybrid => false,
        }
    }

    /// Whether serving a request requires traversing the prefix directories
    /// (Lazy Hybrid embeds effective ACLs precisely to skip this).
    pub fn needs_path_traversal(self) -> bool {
        !matches!(self, StrategyKind::LazyHybrid)
    }

    /// Whether the placement follows the hierarchy (subtree strategies) as
    /// opposed to scattering it by hash.
    pub fn is_subtree(self) -> bool {
        matches!(
            self,
            StrategyKind::StaticSubtree
                | StrategyKind::DynamicSubtree
                | StrategyKind::ElasticSubtree
        )
    }

    /// Whether the runtime load balancer is active. Elasticity builds on
    /// the balancer: migration is how departing nodes hand work off and
    /// how arriving nodes pick it up.
    pub fn rebalances(self) -> bool {
        matches!(self, StrategyKind::DynamicSubtree | StrategyKind::ElasticSubtree)
    }
}

impl fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_each_once() {
        assert_eq!(StrategyKind::ALL.len(), 5);
        let labels: Vec<&str> = StrategyKind::ALL.iter().map(|k| k.label()).collect();
        let mut dedup = labels.clone();
        dedup.dedup();
        assert_eq!(labels, dedup);
    }

    #[test]
    fn layout_split_matches_paper() {
        // §5.3: "the subtree and directory hashing partitioning strategies
        // exploit the presence of locality … by embedding inodes".
        assert!(StrategyKind::StaticSubtree.embeds_inodes());
        assert!(StrategyKind::DynamicSubtree.embeds_inodes());
        assert!(StrategyKind::DirHash.embeds_inodes());
        assert!(!StrategyKind::FileHash.embeds_inodes());
        assert!(!StrategyKind::LazyHybrid.embeds_inodes());
    }

    #[test]
    fn traversal_split_matches_paper() {
        for k in StrategyKind::ALL {
            assert_eq!(k.needs_path_traversal(), k != StrategyKind::LazyHybrid);
        }
    }

    #[test]
    fn only_dynamic_rebalances() {
        for k in StrategyKind::ALL {
            assert_eq!(k.rebalances(), k == StrategyKind::DynamicSubtree);
        }
    }

    #[test]
    fn elastic_is_a_rebalancing_subtree_strategy_outside_all() {
        let e = StrategyKind::ElasticSubtree;
        assert!(!StrategyKind::ALL.contains(&e), "paper figures stay five-way");
        assert!(e.is_subtree() && e.rebalances() && e.embeds_inodes());
        assert!(e.needs_path_traversal());
        assert_eq!(e.to_string(), "ElasticSubtree");
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(StrategyKind::DynamicSubtree.to_string(), "DynamicSubtree");
    }
}

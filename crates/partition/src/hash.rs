//! Path-hash placements (§3.1.2).
//!
//! File hashing maps every item by a hash of its full path; directory
//! hashing maps items by the path of their containing directory so that
//! "directory contents \[are\] grouped on MDS nodes and on disk". Both use
//! a stable FNV-1a hash — placement must be computable by every client and
//! server from the name alone, and must not vary across runs.

use dynmds_namespace::{InodeId, MdsId, Namespace};

use crate::memo::PlacementMemo;

/// FNV-1a initial state.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Feeds bytes into a running FNV-1a state. Feeding a path in slices
/// (`"/"`, component, `"/"`, component, …) produces exactly the state of
/// feeding the joined string — what lets placements hash interned path
/// components straight out of the namespace without building a `String`.
#[inline]
fn fnv_feed(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Murmur3-style finalizer so the low bits (which `% n` consumes) mix
/// fully.
#[inline]
fn avalanche(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// Stable 64-bit FNV-1a over a byte string, finished with the avalanche.
fn fnv1a(bytes: &[u8]) -> u64 {
    avalanche(fnv_feed(FNV_OFFSET, bytes))
}

/// Hashes an absolute path onto one of `n` servers.
pub fn path_hash(path: &str, n: u16) -> MdsId {
    assert!(n > 0, "cluster must be non-empty");
    MdsId((fnv1a(path.as_bytes()) % n as u64) as u16)
}

/// [`path_hash`] of `id`'s primary path, computed incrementally from the
/// namespace's interned components — byte-for-byte the same result as
/// `path_hash(&ns.path_of(id)?, n)` with no `String` built. Returns
/// `None` where `path_of` would error (dead id); callers choose their own
/// fallback, matching whatever their eager code did.
pub fn try_path_hash_of(ns: &Namespace, id: InodeId, n: u16) -> Option<MdsId> {
    assert!(n > 0, "cluster must be non-empty");
    let mut h = FNV_OFFSET;
    let fed = ns
        .visit_path(id, |comp| {
            h = fnv_feed(h, b"/");
            h = fnv_feed(h, comp.as_bytes());
        })
        .ok()?;
    if fed == 0 {
        // The root path renders as a bare "/".
        h = fnv_feed(h, b"/");
    }
    Some(MdsId((avalanche(h) % n as u64) as u16))
}

/// Hashes one directory entry onto one of `n` servers — the scheme used
/// when an individual huge/hot directory is spread across the cluster
/// (§4.3): "the authority for a given directory entry is defined by a hash
/// of the file name and the directory inode number".
pub fn dentry_hash(dir: InodeId, name: &str, n: u16) -> MdsId {
    assert!(n > 0, "cluster must be non-empty");
    let mut h = fnv1a(name.as_bytes());
    h ^= dir.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    MdsId((h % n as u64) as u16)
}

/// Which path component the placement hashes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HashGranularity {
    /// Full path of the item itself (file hashing, Lazy Hybrid).
    File,
    /// Path of the containing directory (directory hashing); directories
    /// are grouped with their own contents.
    Directory,
}

/// A hash placement over `n` servers.
pub struct HashPartition {
    n: u16,
    granularity: HashGranularity,
    /// Memoized authority per inode. The placement itself is stateless,
    /// so the slot stamp tracks only [`Namespace::move_epoch`] — path
    /// hashes change exactly when a primary dentry moves.
    memo: PlacementMemo<MdsId>,
}

impl HashPartition {
    /// Creates a placement for an `n`-server cluster.
    pub fn new(n: u16, granularity: HashGranularity) -> Self {
        assert!(n > 0, "cluster must be non-empty");
        HashPartition { n, granularity, memo: PlacementMemo::new() }
    }

    /// Cluster size.
    pub fn cluster_size(&self) -> u16 {
        self.n
    }

    /// Granularity.
    pub fn granularity(&self) -> HashGranularity {
        self.granularity
    }

    /// The authoritative MDS for `id`.
    ///
    /// Under [`HashGranularity::Directory`], files map by their parent
    /// directory's path and directories by their own path (a directory's
    /// inode lives with its contents). Under [`HashGranularity::File`],
    /// everything maps by its own full path.
    pub fn authority(&self, ns: &Namespace, id: InodeId) -> MdsId {
        if !ns.is_alive(id) {
            // Tombstones bypass the memo: their death bumps no epoch.
            return self.compute(ns, id);
        }
        let stamp = self.memo.stamp(ns);
        if let Some(m) = self.memo.get(id, stamp) {
            return m;
        }
        let m = self.compute(ns, id);
        self.memo.set(id, stamp, m);
        m
    }

    fn compute(&self, ns: &Namespace, id: InodeId) -> MdsId {
        let key_node = match self.granularity {
            HashGranularity::File => id,
            HashGranularity::Directory => {
                if ns.is_dir(id) {
                    id
                } else {
                    ns.parent(id).ok().flatten().unwrap_or(id)
                }
            }
        };
        try_path_hash_of(ns, key_node, self.n).unwrap_or_else(|| path_hash("/", self.n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynmds_namespace::{NamespaceSpec, Permissions};

    fn small_tree() -> (Namespace, InodeId, Vec<InodeId>) {
        let mut ns = Namespace::new();
        let dir = ns.mkdir(ns.root(), "d", Permissions::directory(1)).unwrap();
        let files = (0..20)
            .map(|i| ns.create_file(dir, &format!("f{i}"), Permissions::shared(1)).unwrap())
            .collect();
        (ns, dir, files)
    }

    #[test]
    fn path_hash_is_stable() {
        assert_eq!(path_hash("/home/u/f", 16), path_hash("/home/u/f", 16));
        // Regression pin: placement must never change across releases, or
        // "clients can locate and contact the responsible MDS directly"
        // breaks.
        assert_eq!(path_hash("/home/u/f", 16), MdsId(5));
    }

    #[test]
    fn path_hash_spreads_paths() {
        let n = 8u16;
        let mut counts = vec![0usize; n as usize];
        for i in 0..4000 {
            counts[path_hash(&format!("/home/user{i}/file{i}"), n).index()] += 1;
        }
        for &c in &counts {
            assert!((350..650).contains(&c), "imbalanced: {counts:?}");
        }
    }

    #[test]
    fn dir_granularity_groups_siblings() {
        let (ns, _, files) = small_tree();
        let p = HashPartition::new(7, HashGranularity::Directory);
        let first = p.authority(&ns, files[0]);
        for &f in &files {
            assert_eq!(p.authority(&ns, f), first, "siblings must colocate");
        }
    }

    #[test]
    fn dir_granularity_groups_dir_with_contents() {
        let (ns, dir, files) = small_tree();
        let p = HashPartition::new(7, HashGranularity::Directory);
        assert_eq!(p.authority(&ns, dir), p.authority(&ns, files[0]));
    }

    #[test]
    fn file_granularity_scatters_siblings() {
        let (ns, _, files) = small_tree();
        let p = HashPartition::new(7, HashGranularity::File);
        let distinct: std::collections::HashSet<MdsId> =
            files.iter().map(|&f| p.authority(&ns, f)).collect();
        assert!(distinct.len() > 2, "20 siblings should scatter, got {distinct:?}");
    }

    #[test]
    fn rename_changes_file_hash_placement() {
        // The LH migration cost exists because placement follows the path.
        let (mut ns, dir, files) = small_tree();
        let p = HashPartition::new(64, HashGranularity::File);
        let before = p.authority(&ns, files[0]);
        ns.rename(dir, "f0", ns.root(), "elsewhere").unwrap();
        let after = p.authority(&ns, files[0]);
        assert_ne!(before, after, "with 64 buckets a move almost surely rehashes");
    }

    #[test]
    fn authority_is_balanced_over_generated_namespace() {
        let snap = NamespaceSpec { users: 40, seed: 3, ..Default::default() }.generate();
        let n = 10u16;
        let p = HashPartition::new(n, HashGranularity::File);
        let mut counts = vec![0usize; n as usize];
        let mut total = 0usize;
        for id in snap.ns.live_ids() {
            counts[p.authority(&snap.ns, id).index()] += 1;
            total += 1;
        }
        let mean = total / n as usize;
        for &c in &counts {
            assert!(
                c > mean / 2 && c < mean * 2,
                "file hash should be roughly balanced: {counts:?}"
            );
        }
    }

    #[test]
    fn dentry_hash_depends_on_both_inputs() {
        let a = dentry_hash(InodeId(1), "x", 32);
        let b = dentry_hash(InodeId(2), "x", 32);
        let c = dentry_hash(InodeId(1), "y", 32);
        // Not a strict guarantee per-pair, but these specific values must
        // differ for the chosen hash; pin them to catch accidental changes.
        assert!(a != b || a != c, "hash must mix dir and name");
    }

    #[test]
    fn dentry_hash_spreads_entries_of_one_directory() {
        let n = 8u16;
        let mut counts = vec![0usize; n as usize];
        for i in 0..4000 {
            counts[dentry_hash(InodeId(42), &format!("file{i}"), n).index()] += 1;
        }
        for &c in &counts {
            assert!((350..650).contains(&c), "imbalanced: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_cluster_rejected() {
        path_hash("/x", 0);
    }

    #[test]
    fn incremental_hash_matches_eager_path_hash() {
        let snap = NamespaceSpec { users: 20, seed: 51, ..Default::default() }.generate();
        let ns = &snap.ns;
        for n in [1u16, 7, 16, 64] {
            for id in ns.live_ids() {
                let eager = path_hash(&ns.path_of(id).unwrap(), n);
                assert_eq!(try_path_hash_of(ns, id, n), Some(eager), "id {id:?} n {n}");
            }
        }
        // Root hashes as "/".
        assert_eq!(try_path_hash_of(ns, ns.root(), 16), Some(path_hash("/", 16)));
        // Dead ids report None so callers pick their own fallback.
        let mut ns2 = Namespace::new();
        let f = ns2.create_file(ns2.root(), "x", Permissions::shared(1)).unwrap();
        ns2.unlink(ns2.root(), "x").unwrap();
        assert_eq!(try_path_hash_of(&ns2, f, 16), None);
    }
}

//! Property test: the memoized authority cache in [`SubtreePartition`]
//! agrees with the seed's naive walk — `delegations.get(id)`, then the
//! ancestor chain, then the root delegation — across long randomized
//! sequences of delegations, undelegations, renames, hard links, unlinks
//! and creations. The naive reference is reimplemented here against a
//! shadow copy of the delegation table, so a staleness bug in the memo
//! (a missed invalidation on a namespace move or delegation change)
//! cannot hide in shared code.

use std::collections::HashMap;

use dynmds_namespace::{InodeId, MdsId, Namespace, Permissions};
use dynmds_partition::SubtreePartition;

/// Splitmix64: small, seedable, good enough to drive a fuzz schedule.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    fn pick<T: Copy>(&mut self, v: &[T]) -> Option<T> {
        if v.is_empty() {
            None
        } else {
            Some(v[self.below(v.len())])
        }
    }
}

/// The seed revision's authority walk, verbatim, over the shadow table.
fn naive_authority(
    dels: &HashMap<InodeId, MdsId>,
    ns: &Namespace,
    root: InodeId,
    id: InodeId,
) -> MdsId {
    if let Some(&m) = dels.get(&id) {
        return m;
    }
    for anc in ns.ancestors(id) {
        if let Some(&m) = dels.get(&anc) {
            return m;
        }
    }
    dels.get(&root).copied().unwrap_or(MdsId(0))
}

/// The seed revision's delegation-point walk, verbatim.
fn naive_subtree_root(
    dels: &HashMap<InodeId, MdsId>,
    ns: &Namespace,
    root: InodeId,
    id: InodeId,
) -> InodeId {
    if dels.contains_key(&id) {
        return id;
    }
    for anc in ns.ancestors(id) {
        if dels.contains_key(&anc) {
            return anc;
        }
    }
    root
}

/// Ids of all live directories, in id order.
fn live_dirs(ns: &Namespace, ids: &[InodeId]) -> Vec<InodeId> {
    let mut v: Vec<InodeId> =
        ids.iter().copied().filter(|&i| ns.is_alive(i) && ns.is_dir(i)).collect();
    v.push(ns.root());
    v
}

#[test]
fn memoized_authority_matches_naive_walk_over_random_history() {
    const STEPS: usize = 12_000;
    const N_MDS: u64 = 8;

    let mut rng = Rng(0xD1CE_D00D_5EED_0001);
    let mut ns = Namespace::new();
    let root = ns.root();
    let mut part = SubtreePartition::new(root, MdsId(0));
    // Shadow of the delegation table, mutated in lockstep with `part`.
    let mut shadow: HashMap<InodeId, MdsId> = HashMap::new();
    shadow.insert(root, MdsId(0));

    // Every id ever created, live or dead — dead ids must stay resolvable.
    let mut ids: Vec<InodeId> = Vec::new();
    let mut name_seq = 0u64;

    // Seed a small tree so early steps have material to work with.
    for _ in 0..12 {
        let d = ns.mkdir(root, &format!("seed{name_seq}"), Permissions::directory(1)).unwrap();
        name_seq += 1;
        ids.push(d);
    }

    for step in 0..STEPS {
        let dirs = live_dirs(&ns, &ids);
        match rng.below(10) {
            // Grow: a new directory or file under a random live dir.
            0..=2 => {
                let parent = rng.pick(&dirs).unwrap();
                let name = format!("n{name_seq}");
                name_seq += 1;
                let made = if rng.below(2) == 0 {
                    ns.mkdir(parent, &name, Permissions::directory(1))
                } else {
                    ns.create_file(parent, &name, Permissions::shared(1))
                };
                if let Ok(id) = made {
                    ids.push(id);
                }
            }
            // Delegate a random live directory.
            3 | 4 => {
                let dir = rng.pick(&dirs).unwrap();
                let mds = MdsId((rng.next() % N_MDS) as u16);
                part.delegate(dir, mds);
                shadow.insert(dir, mds);
            }
            // Undelegate a random delegation point.
            5 => {
                let mut points: Vec<InodeId> = shadow.keys().copied().collect();
                points.sort();
                if let Some(dir) = rng.pick(&points) {
                    let removed = part.undelegate(dir);
                    if removed.is_some() {
                        shadow.remove(&dir);
                    }
                }
            }
            // Rename/move a random entry somewhere else (may legally fail:
            // cycles, clobbers, the root — errors are part of the space).
            6 | 7 => {
                let from = rng.pick(&dirs).unwrap();
                let names: Vec<String> = ns
                    .children(from)
                    .map(|it| it.map(|(n, _)| n.to_string()).collect())
                    .unwrap_or_default();
                if let Some(name) = names.get(rng.below(names.len().max(1))) {
                    let to = rng.pick(&dirs).unwrap();
                    let newname = format!("n{name_seq}");
                    name_seq += 1;
                    let _ = ns.rename(from, name, to, &newname);
                }
            }
            // Hard-link a random file, so a later unlink can exercise the
            // primary-dentry promotion path.
            8 => {
                let files: Vec<InodeId> =
                    ids.iter().copied().filter(|&i| ns.is_alive(i) && !ns.is_dir(i)).collect();
                if let (Some(f), Some(dir)) = (rng.pick(&files), rng.pick(&dirs)) {
                    let name = format!("l{name_seq}");
                    name_seq += 1;
                    let _ = ns.link(f, dir, &name);
                }
            }
            // Unlink a random dentry (files, links, or empty dirs).
            _ => {
                let dir = rng.pick(&dirs).unwrap();
                let names: Vec<String> = ns
                    .children(dir)
                    .map(|it| it.map(|(n, _)| n.to_string()).collect())
                    .unwrap_or_default();
                if let Some(name) = names.get(rng.below(names.len().max(1))) {
                    let _ = ns.unlink(dir, name);
                }
            }
        }

        // Spot-check a handful of ids (live and dead) every step…
        for _ in 0..4 {
            let id = match rng.pick(&ids) {
                Some(id) => id,
                None => continue,
            };
            assert_eq!(
                part.authority(&ns, id),
                naive_authority(&shadow, &ns, root, id),
                "authority diverged for {id} at step {step}"
            );
            assert_eq!(
                part.subtree_root_of(&ns, id),
                naive_subtree_root(&shadow, &ns, root, id),
                "subtree root diverged for {id} at step {step}"
            );
        }
        // …and sweep every id ever created periodically and at the end.
        if step % 1000 == 999 || step == STEPS - 1 {
            for &id in &ids {
                assert_eq!(
                    part.authority(&ns, id),
                    naive_authority(&shadow, &ns, root, id),
                    "authority diverged for {id} in sweep at step {step}"
                );
            }
        }
    }

    assert!(ids.len() > 1000, "fuzz schedule should have grown a real tree");
}

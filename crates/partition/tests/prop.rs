//! Property tests: placement functions stay total, consistent, and
//! hierarchy-respecting under random namespaces and random delegation
//! programs.

use dynmds_namespace::{InodeId, MdsId, NamespaceSpec};
use dynmds_partition::{
    HashGranularity, HashPartition, LazyHybrid, StrategyKind, SubtreePartition,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Authority is total and in-range for every live item, for every
    /// strategy, on any generated namespace.
    #[test]
    fn authority_total_and_in_range(seed in 0u64..500, n_mds in 1u16..32) {
        let snap = NamespaceSpec { users: 6, seed, ..Default::default() }.generate();
        for kind in StrategyKind::ALL {
            let part = dynmds_partition::Partition::initial(kind, &snap.ns, n_mds);
            for id in snap.ns.live_ids() {
                let m = part.authority(&snap.ns, id);
                prop_assert!(m.index() < n_mds as usize, "{kind}: {m} out of range");
            }
        }
    }

    /// Random delegation programs keep subtree authority consistent with
    /// the nearest-enclosing-delegation rule.
    #[test]
    fn subtree_delegation_rule_holds(
        seed in 0u64..200,
        ops in prop::collection::vec((any::<usize>(), 0u16..8, any::<bool>()), 1..60),
    ) {
        let snap = NamespaceSpec { users: 4, seed, ..Default::default() }.generate();
        let ns = snap.ns;
        let dirs: Vec<InodeId> = ns.live_ids().filter(|&i| ns.is_dir(i)).collect();
        let mut part = SubtreePartition::new(ns.root(), MdsId(0));

        for &(pick, mds, remove) in &ops {
            let d = dirs[pick % dirs.len()];
            if remove {
                part.undelegate(d);
            } else {
                part.delegate(d, MdsId(mds));
            }
        }

        // Root delegation survives everything.
        prop_assert!(part.delegation_of(ns.root()).is_some());

        for id in ns.live_ids() {
            let expected = {
                // Reference implementation: nearest enclosing delegation.
                let mut cur = Some(id);
                let mut found = None;
                while let Some(c) = cur {
                    if let Some(m) = part.delegation_of(c) {
                        found = Some(m);
                        break;
                    }
                    cur = ns.parent(c).unwrap();
                }
                found.expect("root always delegated")
            };
            prop_assert_eq!(part.authority(&ns, id), expected);
            // The reported subtree root governs the item.
            let root = part.subtree_root_of(&ns, id);
            prop_assert!(root == id || ns.is_ancestor(root, id) );
            prop_assert_eq!(part.delegation_of(root).unwrap_or(MdsId(0)), expected);
        }

        // Partition sizes cover the namespace exactly once.
        let sizes = part.partition_sizes(&ns, 8);
        prop_assert_eq!(sizes.iter().sum::<u64>(), ns.total_items());
    }

    /// Directory hashing keeps every directory's children together, on
    /// any namespace.
    #[test]
    fn dir_hash_colocates_every_family(seed in 0u64..200, n in 1u16..24) {
        let snap = NamespaceSpec { users: 4, seed, ..Default::default() }.generate();
        let ns = snap.ns;
        let p = HashPartition::new(n, HashGranularity::Directory);
        for dir in ns.live_ids().filter(|&i| ns.is_dir(i)) {
            let home = p.authority(&ns, dir);
            for (_, child) in ns.children(dir).unwrap() {
                if !ns.is_dir(child) {
                    prop_assert_eq!(p.authority(&ns, child), home);
                }
            }
        }
    }

    /// Lazy Hybrid: applying pending updates is idempotent, and every
    /// event on an ancestor is seen exactly once per item.
    #[test]
    fn lazy_hybrid_applies_each_event_once(
        seed in 0u64..200,
        events in prop::collection::vec((any::<usize>(), any::<bool>()), 1..30),
    ) {
        let snap = NamespaceSpec { users: 4, seed, ..Default::default() }.generate();
        let ns = snap.ns;
        let dirs: Vec<InodeId> = ns.live_ids().filter(|&i| ns.is_dir(i)).collect();
        let files: Vec<InodeId> = ns.live_ids().filter(|&i| !ns.is_dir(i)).collect();
        prop_assume!(!files.is_empty());

        let mut lh = LazyHybrid::new(8);
        for &(pick, perm) in &events {
            let d = dirs[pick % dirs.len()];
            if perm {
                lh.on_dir_permission_change(d);
            } else {
                lh.on_dir_move(d);
            }
        }

        let file = files[seed as usize % files.len()];
        // Ground truth: count events on strict ancestors.
        let expected: u64 = events
            .iter()
            .map(|&(pick, _)| dirs[pick % dirs.len()])
            .filter(|&d| ns.is_ancestor(d, file))
            .count() as u64;
        let applied = lh.apply_pending(&ns, file);
        prop_assert_eq!(applied.total(), expected);
        // Idempotent: a second access sees nothing.
        prop_assert_eq!(lh.apply_pending(&ns, file).total(), 0);
        prop_assert_eq!(lh.lifetime_stats().total(), expected);
    }
}

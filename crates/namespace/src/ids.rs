//! Strongly typed identifiers shared across the workspace.

use std::fmt;

/// Identifier of a file or directory inode. Inode ids are allocated
/// sequentially by [`crate::Namespace`] and never reused, which mirrors the
/// paper's observation that without a global inode table the system needs
/// only "an alternative (though simpler) mechanism for allocating unique
/// identifiers".
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InodeId(pub u64);

impl InodeId {
    /// Index form for arena addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ino{}", self.0)
    }
}

/// Identifier of a metadata server in the cluster (dense, `0..n`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MdsId(pub u16);

impl MdsId {
    /// Index form for dense per-node arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MdsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mds{}", self.0)
    }
}

/// Identifier of a simulated client (dense, `0..n`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(pub u32);

impl ClientId {
    /// Index form for dense per-client arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_distinct_types_with_indices() {
        assert_eq!(InodeId(7).index(), 7);
        assert_eq!(MdsId(3).index(), 3);
        assert_eq!(ClientId(9).index(), 9);
    }

    #[test]
    fn ids_display_with_prefixes() {
        assert_eq!(InodeId(1).to_string(), "ino1");
        assert_eq!(MdsId(2).to_string(), "mds2");
        assert_eq!(ClientId(3).to_string(), "client3");
    }

    #[test]
    fn ids_hash_and_order() {
        let mut set = HashSet::new();
        set.insert(InodeId(1));
        set.insert(InodeId(1));
        set.insert(InodeId(2));
        assert_eq!(set.len(), 2);
        assert!(MdsId(0) < MdsId(1));
    }
}

//! FxHash: the rustc-style multiplicative hasher, for hot maps keyed by
//! dense ids.
//!
//! The simulator's per-op path probes several `HashMap`s keyed by
//! [`InodeId`](crate::InodeId) (cache entries, delegation points, balancer
//! counters). The std default SipHash is keyed and DoS-resistant — wasted
//! work here, where keys are internally generated sequential ids and the
//! tables are rebuilt every run. Fx costs one rotate + xor + multiply per
//! word, is deterministic across processes (unlike `RandomState`), and
//! benches ~3–5× faster on point lookups of integer keys.
//!
//! Not DoS-resistant: never use for attacker-controlled keys.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx state. One multiply per 8-byte word.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` with Fx hashing.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` with Fx hashing.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// An `FxHashMap` with at least `cap` capacity.
pub fn fx_map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_one(42u64), hash_one(42u64));
        assert_eq!(hash_one("abc"), hash_one("abc"));
    }

    #[test]
    fn distinguishes_sequential_ids() {
        let hashes: std::collections::HashSet<u64> = (0u64..10_000).map(hash_one).collect();
        assert_eq!(hashes.len(), 10_000, "no collisions on dense id range");
    }

    #[test]
    fn map_and_set_behave() {
        let mut m: FxHashMap<u64, u64> = fx_map_with_capacity(16);
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.get(&500), Some(&1000));
        assert_eq!(m.len(), 1000);
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
    }

    #[test]
    fn byte_tail_handled() {
        // write() path with non-multiple-of-8 lengths.
        assert_ne!(hash_one("a"), hash_one("b"));
        assert_ne!(hash_one("abcdefgh"), hash_one("abcdefghi"));
    }
}

//! Deterministic synthetic namespace snapshots.
//!
//! The paper runs its simulations against "snapshots of actual file
//! systems … a large collection of home directories" (§5.2). This module
//! generates statistically similar snapshots: a `/home` tree with one
//! subtree per user plus a few shared project trees, with geometric nesting
//! depth and skewed files-per-directory counts. Generation is fully
//! deterministic in the seed, so every experiment is reproducible.

use dynmds_event::SimRng;

use crate::ids::InodeId;
use crate::inode::Permissions;
use crate::tree::Namespace;

/// Parameters of a synthetic snapshot.
#[derive(Clone, Debug)]
pub struct NamespaceSpec {
    /// Number of user home directories under `/home`.
    pub users: usize,
    /// Mean number of directories (beyond the home itself) per user tree.
    pub mean_dirs_per_user: f64,
    /// Geometric parameter controlling how deep new directories nest;
    /// larger means shallower trees. Must be in `(0, 1]`.
    pub depth_p: f64,
    /// Mean number of files per directory (sampled per directory).
    pub mean_files_per_dir: f64,
    /// Number of shared top-level project trees (`/proj0`, `/proj1`, …),
    /// each shaped like a user tree but world-readable.
    pub shared_trees: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NamespaceSpec {
    fn default() -> Self {
        NamespaceSpec {
            users: 100,
            mean_dirs_per_user: 10.0,
            depth_p: 0.4,
            mean_files_per_dir: 8.0,
            shared_trees: 4,
            seed: 1,
        }
    }
}

impl NamespaceSpec {
    /// Builds a spec that generates approximately `target_items` total
    /// metadata items spread over `users` home trees. The approximation
    /// solves `users * (1 + dirs) * (1 + files)` for the per-user knobs.
    pub fn with_target_items(users: usize, target_items: u64, seed: u64) -> Self {
        let users = users.max(1);
        let per_user = (target_items as f64 / users as f64).max(4.0);
        // Keep files-per-dir around the default and let directory count
        // absorb the scale, matching how real home collections grow.
        let files_per_dir = 8.0f64;
        let dirs = (per_user / (1.0 + files_per_dir)).max(1.0);
        NamespaceSpec {
            users,
            mean_dirs_per_user: dirs,
            depth_p: 0.4,
            mean_files_per_dir: files_per_dir,
            shared_trees: (users / 25).clamp(1, 8),
            seed,
        }
    }

    /// Generates the snapshot.
    pub fn generate(&self) -> Snapshot {
        assert!(self.users > 0, "at least one user tree required");
        assert!(self.depth_p > 0.0 && self.depth_p <= 1.0, "depth_p must be in (0, 1]");
        let mut rng = SimRng::seed_from_u64(self.seed);
        let mut ns = Namespace::new();
        let root = ns.root();
        let home = ns.mkdir(root, "home", Permissions::directory(0)).expect("fresh tree");

        let mut user_homes = Vec::with_capacity(self.users);
        for u in 0..self.users {
            let uid = u as u32 + 1;
            let name = format!("user{u:04}");
            let h = ns.mkdir(home, &name, Permissions::directory(uid)).expect("unique name");
            let mut sub = rng.fork(u as u64);
            grow_tree(&mut ns, &mut sub, h, uid, self, false);
            user_homes.push(h);
        }

        let mut shared_roots = Vec::with_capacity(self.shared_trees);
        for s in 0..self.shared_trees {
            let name = format!("proj{s}");
            let p = ns.mkdir(root, &name, Permissions::directory(0)).expect("unique name");
            let mut sub = rng.fork(0x5000 + s as u64);
            grow_tree(&mut ns, &mut sub, p, 0, self, true);
            shared_roots.push(p);
        }

        Snapshot { ns, user_homes, shared_roots }
    }
}

/// Expands one user/project tree in place.
fn grow_tree(
    ns: &mut Namespace,
    rng: &mut SimRng,
    tree_root: InodeId,
    uid: u32,
    spec: &NamespaceSpec,
    shared: bool,
) {
    // Directory skeleton: each new directory nests under a recent directory
    // with geometric depth preference, which yields the long-tailed depth
    // distribution of real home trees.
    let n_dirs = sample_count(rng, spec.mean_dirs_per_user);
    let mut dirs = vec![tree_root];
    for d in 0..n_dirs {
        // Walk down from the tree root a geometric number of steps through
        // already-created directories.
        let mut parent = tree_root;
        let steps = rng.geometric(spec.depth_p);
        for _ in 0..steps {
            // Prefer recently created dirs: bias toward the back half.
            let lo = dirs.len() / 2;
            let idx = rng.range(lo as u64, dirs.len() as u64) as usize;
            parent = dirs[idx];
        }
        let name = format!("d{d:03}");
        let perm = if shared { Permissions::directory(0) } else { Permissions::directory(uid) };
        if let Ok(id) = ns.mkdir(parent, &name, perm) {
            dirs.push(id);
        }
    }

    // Files: per-directory count sampled around the mean; shared trees are
    // world-readable, user trees mostly private with some shared files.
    for (i, &dir) in dirs.iter().enumerate() {
        let n_files = sample_count(rng, spec.mean_files_per_dir);
        for f in 0..n_files {
            let name = format!("f{i:03}_{f:03}");
            let perm = if shared || rng.chance(0.3) {
                Permissions::shared(uid)
            } else {
                Permissions::private(uid)
            };
            let id = ns.create_file(dir, &name, perm).expect("unique name");
            // Long-tailed file sizes: most small, some huge.
            let size = (rng.exponential(64.0 * 1024.0)) as u64;
            ns.update_inode(id, |ino| ino.size = size).expect("just created");
        }
    }
}

/// Samples a non-negative count with the given mean (exponential rounding;
/// long-tailed like observed files-per-directory distributions).
fn sample_count(rng: &mut SimRng, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    rng.exponential(mean).round() as usize
}

/// Replays exactly the RNG draws of [`grow_tree`] without building the
/// tree, returning the number of items it would create (directories plus
/// files, excluding the tree root itself). Must stay in lock-step with
/// `grow_tree`: any draw added there must be consumed here too.
fn count_tree(rng: &mut SimRng, spec: &NamespaceSpec, shared: bool) -> u64 {
    let n_dirs = sample_count(rng, spec.mean_dirs_per_user);
    let mut len = 1u64; // `dirs` vector length in grow_tree
    for _ in 0..n_dirs {
        let steps = rng.geometric(spec.depth_p);
        for _ in 0..steps {
            let lo = len / 2;
            let _ = rng.range(lo, len);
        }
        len += 1; // tree-unique names mean mkdir always succeeds
    }
    let mut files = 0u64;
    for _ in 0..len {
        let n_files = sample_count(rng, spec.mean_files_per_dir);
        for _ in 0..n_files {
            if !shared {
                let _ = rng.chance(0.3);
            }
            let _ = rng.exponential(64.0 * 1024.0);
        }
        files += n_files as u64;
    }
    n_dirs as u64 + files
}

/// Streaming snapshot generator: the same deterministic tree as
/// [`NamespaceSpec::generate`], materialized subtree-by-subtree on demand.
///
/// At the scale tier a 10⁸-inode snapshot cannot be built eagerly; but a
/// simulated client population only ever *touches* the subtrees its
/// working sets live in. The streaming generator banks one fork seed per
/// user/shared tree up front (consuming exactly the draw sequence the
/// eager generator would, so the two are interchangeable) and then grows
/// each subtree only when asked. Untouched users cost 8 bytes of banked
/// seed; [`logical_items`](Self::logical_items) still reports the full
/// logical namespace size by replaying counts from the seeds without
/// allocating nodes.
///
/// Materializing users `0..n` in ascending order followed by shared trees
/// `0..m` reproduces the eager generator's id assignment exactly;
/// [`generate_all`](Self::generate_all) does precisely that and is
/// property-tested equal to [`NamespaceSpec::generate`]. Out-of-order
/// materialization yields isomorphic subtrees with different ids — fine
/// within a run, as long as every rerun materializes in the same order.
pub struct StreamingGenerator {
    spec: NamespaceSpec,
    ns: Namespace,
    home: InodeId,
    user_seeds: Vec<u64>,
    shared_seeds: Vec<u64>,
    user_homes: Vec<Option<InodeId>>,
    shared_roots: Vec<Option<InodeId>>,
}

impl StreamingGenerator {
    /// Sets up `/` and `/home` and banks every subtree seed. No user or
    /// shared tree is materialized yet.
    pub fn new(spec: NamespaceSpec) -> Self {
        assert!(spec.users > 0, "at least one user tree required");
        assert!(spec.depth_p > 0.0 && spec.depth_p <= 1.0, "depth_p must be in (0, 1]");
        let mut rng = SimRng::seed_from_u64(spec.seed);
        let mut ns = Namespace::new();
        let root = ns.root();
        let home = ns.mkdir(root, "home", Permissions::directory(0)).expect("fresh tree");
        // Bank fork seeds in the exact order the eager generator forks.
        let user_seeds: Vec<u64> = (0..spec.users).map(|u| rng.fork_seed(u as u64)).collect();
        let shared_seeds: Vec<u64> =
            (0..spec.shared_trees).map(|s| rng.fork_seed(0x5000 + s as u64)).collect();
        let user_homes = vec![None; spec.users];
        let shared_roots = vec![None; spec.shared_trees];
        StreamingGenerator { spec, ns, home, user_seeds, shared_seeds, user_homes, shared_roots }
    }

    /// The namespace as materialized so far.
    pub fn ns(&self) -> &Namespace {
        &self.ns
    }

    /// The spec this generator was built from.
    pub fn spec(&self) -> &NamespaceSpec {
        &self.spec
    }

    /// Home directory of user `u` if already materialized.
    pub fn user_home(&self, u: usize) -> Option<InodeId> {
        self.user_homes[u]
    }

    /// Materializes user `u`'s home tree (idempotent) and returns its
    /// home directory.
    pub fn materialize_user(&mut self, u: usize) -> InodeId {
        if let Some(h) = self.user_homes[u] {
            return h;
        }
        let uid = u as u32 + 1;
        let name = format!("user{u:04}");
        let h = self.ns.mkdir(self.home, &name, Permissions::directory(uid)).expect("unique name");
        let mut sub = SimRng::seed_from_u64(self.user_seeds[u]);
        grow_tree(&mut self.ns, &mut sub, h, uid, &self.spec, false);
        self.user_homes[u] = Some(h);
        h
    }

    /// Materializes shared tree `s` (idempotent) and returns its root.
    pub fn materialize_shared(&mut self, s: usize) -> InodeId {
        if let Some(p) = self.shared_roots[s] {
            return p;
        }
        let name = format!("proj{s}");
        let p = self.ns.mkdir(self.ns.root(), &name, Permissions::directory(0)).expect("unique");
        let mut sub = SimRng::seed_from_u64(self.shared_seeds[s]);
        grow_tree(&mut self.ns, &mut sub, p, 0, &self.spec, true);
        self.shared_roots[s] = Some(p);
        p
    }

    /// Items user `u`'s tree holds (home dir included), whether or not it
    /// is materialized — a pure count replay of the banked seed.
    pub fn user_items(&self, u: usize) -> u64 {
        let mut rng = SimRng::seed_from_u64(self.user_seeds[u]);
        1 + count_tree(&mut rng, &self.spec, false)
    }

    /// Items shared tree `s` holds (its root included).
    pub fn shared_items(&self, s: usize) -> u64 {
        let mut rng = SimRng::seed_from_u64(self.shared_seeds[s]);
        1 + count_tree(&mut rng, &self.spec, true)
    }

    /// Total items of the *logical* namespace — what
    /// [`NamespaceSpec::generate`] would materialize — regardless of how
    /// much has actually been built. O(users) count replays; call once
    /// and cache at large scale.
    pub fn logical_items(&self) -> u64 {
        let users: u64 = (0..self.spec.users).map(|u| self.user_items(u)).sum();
        let shared: u64 = (0..self.spec.shared_trees).map(|s| self.shared_items(s)).sum();
        2 + users + shared // root + /home
    }

    /// Materializes everything in the eager generator's order and returns
    /// the identical snapshot.
    pub fn generate_all(mut self) -> Snapshot {
        for u in 0..self.spec.users {
            self.materialize_user(u);
        }
        for s in 0..self.spec.shared_trees {
            self.materialize_shared(s);
        }
        self.into_snapshot()
    }

    /// Converts the partially materialized namespace into a [`Snapshot`].
    /// `user_homes`/`shared_roots` contain only materialized trees, in
    /// ascending user/tree order.
    pub fn into_snapshot(self) -> Snapshot {
        Snapshot {
            ns: self.ns,
            user_homes: self.user_homes.into_iter().flatten().collect(),
            shared_roots: self.shared_roots.into_iter().flatten().collect(),
        }
    }
}

/// A generated snapshot: the namespace plus the roots the workload
/// generators anchor client locality to.
pub struct Snapshot {
    /// The file-system tree.
    pub ns: Namespace,
    /// One home directory per user, index = user.
    pub user_homes: Vec<InodeId>,
    /// Shared project trees.
    pub shared_roots: Vec<InodeId>,
}

impl Snapshot {
    /// Summary statistics, used by experiment logs and tests.
    pub fn stats(&self) -> SnapshotStats {
        let ns = &self.ns;
        let mut max_depth = 0usize;
        let mut total_depth = 0u64;
        let mut files = 0u64;
        let mut dirs = 0u64;
        for id in ns.live_ids() {
            let d = ns.depth(id).expect("live");
            max_depth = max_depth.max(d);
            total_depth += d as u64;
            if ns.is_dir(id) {
                dirs += 1;
            } else {
                files += 1;
            }
        }
        let total = files + dirs;
        SnapshotStats {
            files,
            dirs,
            total,
            max_depth,
            mean_depth: if total > 0 { total_depth as f64 / total as f64 } else { 0.0 },
            mean_files_per_dir: if dirs > 0 { files as f64 / dirs as f64 } else { 0.0 },
        }
    }
}

/// Aggregate shape of a snapshot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SnapshotStats {
    /// Live regular files (and symlinks).
    pub files: u64,
    /// Live directories.
    pub dirs: u64,
    /// Total live items.
    pub total: u64,
    /// Deepest entry.
    pub max_depth: usize,
    /// Mean depth over all entries.
    pub mean_depth: f64,
    /// Files per directory on average.
    pub mean_files_per_dir: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = NamespaceSpec { users: 10, seed: 7, ..Default::default() };
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.ns.total_items(), b.ns.total_items());
        let pa: Vec<String> = a.ns.walk(a.ns.root()).map(|i| a.ns.path_of(i).unwrap()).collect();
        let pb: Vec<String> = b.ns.walk(b.ns.root()).map(|i| b.ns.path_of(i).unwrap()).collect();
        assert_eq!(pa, pb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = NamespaceSpec { users: 10, seed: 1, ..Default::default() }.generate();
        let b = NamespaceSpec { users: 10, seed: 2, ..Default::default() }.generate();
        assert_ne!(a.ns.total_items(), b.ns.total_items());
    }

    #[test]
    fn one_home_per_user() {
        let snap = NamespaceSpec { users: 25, seed: 3, ..Default::default() }.generate();
        assert_eq!(snap.user_homes.len(), 25);
        for (u, &h) in snap.user_homes.iter().enumerate() {
            let path = snap.ns.path_of(h).unwrap();
            assert_eq!(path, format!("/home/user{u:04}"));
            assert_eq!(snap.ns.inode(h).unwrap().perm.uid, u as u32 + 1);
        }
    }

    #[test]
    fn shared_trees_exist_and_are_world_readable() {
        let spec = NamespaceSpec { users: 10, shared_trees: 3, seed: 5, ..Default::default() };
        let snap = spec.generate();
        assert_eq!(snap.shared_roots.len(), 3);
        for &p in &snap.shared_roots {
            assert!(snap.ns.is_dir(p));
            assert!(snap.ns.inode(p).unwrap().perm.allows_traverse(999));
        }
    }

    #[test]
    fn target_items_is_roughly_met() {
        for target in [2_000u64, 10_000, 40_000] {
            let spec = NamespaceSpec::with_target_items(50, target, 11);
            let snap = spec.generate();
            let total = snap.ns.total_items();
            let lo = target / 2;
            let hi = target * 2;
            assert!((lo..hi).contains(&total), "target {target} produced {total}");
        }
    }

    #[test]
    fn stats_are_consistent_with_tree() {
        let snap = NamespaceSpec { users: 20, seed: 9, ..Default::default() }.generate();
        let st = snap.stats();
        assert_eq!(st.total, snap.ns.total_items());
        assert_eq!(st.files, snap.ns.num_files());
        assert_eq!(st.dirs, snap.ns.num_dirs());
        assert!(st.max_depth >= 2, "home trees nest below /home/userX");
        assert!(st.mean_depth > 1.0);
        assert!(st.mean_files_per_dir > 0.0);
    }

    #[test]
    fn trees_have_depth_variation() {
        let snap =
            NamespaceSpec { users: 30, mean_dirs_per_user: 20.0, seed: 13, ..Default::default() }
                .generate();
        let st = snap.stats();
        assert!(st.max_depth > 3, "expected nesting, got max depth {}", st.max_depth);
    }

    #[test]
    fn streaming_matches_eager_generator_exactly() {
        for seed in [1u64, 7, 99] {
            let spec = NamespaceSpec { users: 12, shared_trees: 3, seed, ..Default::default() };
            let eager = spec.generate();
            let stream = StreamingGenerator::new(spec).generate_all();
            assert_eq!(stream.user_homes, eager.user_homes);
            assert_eq!(stream.shared_roots, eager.shared_roots);
            // Image equality covers ids, names, parents, perms, sizes.
            assert_eq!(stream.ns.to_image(), eager.ns.to_image());
        }
    }

    #[test]
    fn logical_items_matches_materialized_total() {
        let spec = NamespaceSpec { users: 9, shared_trees: 2, seed: 31, ..Default::default() };
        let gen = StreamingGenerator::new(spec.clone());
        let logical = gen.logical_items();
        let snap = gen.generate_all();
        assert_eq!(logical, snap.ns.total_items());
        assert_eq!(logical, spec.generate().ns.total_items());
    }

    #[test]
    fn unmaterialized_users_cost_no_nodes() {
        let spec = NamespaceSpec::with_target_items(10_000, 500_000, 5);
        let mut gen = StreamingGenerator::new(spec);
        // Only / and /home exist before anyone asks for a subtree.
        assert_eq!(gen.ns().total_items(), 2);
        let before = gen.ns().heap_bytes();
        let h = gen.materialize_user(4242);
        assert!(gen.ns().total_items() > 2);
        assert_eq!(gen.ns().path_of(h).unwrap(), "/home/user4242");
        assert_eq!(gen.user_home(4242), Some(h));
        assert_eq!(gen.user_home(0), None);
        // Idempotent: second call adds nothing.
        let items = gen.ns().total_items();
        assert_eq!(gen.materialize_user(4242), h);
        assert_eq!(gen.ns().total_items(), items);
        // Cost scales with what was materialized, not with spec.users.
        let after = gen.ns().heap_bytes();
        assert!(after > before);
        assert_eq!(items - 2, gen.user_items(4242), "count replay matches real subtree");
    }

    #[test]
    fn out_of_order_materialization_is_isomorphic() {
        let spec = NamespaceSpec { users: 6, shared_trees: 1, seed: 77, ..Default::default() };
        let mut fwd = StreamingGenerator::new(spec.clone());
        let mut rev = StreamingGenerator::new(spec);
        for u in 0..6 {
            fwd.materialize_user(u);
            rev.materialize_user(5 - u);
        }
        for u in 0..6 {
            let a = fwd.user_home(u).unwrap();
            let b = rev.user_home(u).unwrap();
            assert_eq!(fwd.ns().subtree_count(a).unwrap(), rev.ns().subtree_count(b).unwrap());
            let pa: Vec<String> = fwd.ns().walk(a).map(|i| fwd.ns().path_of(i).unwrap()).collect();
            let pb: Vec<String> = rev.ns().walk(b).map(|i| rev.ns().path_of(i).unwrap()).collect();
            assert_eq!(pa, pb, "same user tree regardless of build order");
        }
    }

    #[test]
    fn user_files_are_owned_by_user() {
        let snap = NamespaceSpec { users: 5, seed: 17, ..Default::default() }.generate();
        let home0 = snap.user_homes[0];
        for id in snap.ns.walk(home0) {
            assert_eq!(snap.ns.inode(id).unwrap().perm.uid, 1);
        }
    }
}

//! Deterministic synthetic namespace snapshots.
//!
//! The paper runs its simulations against "snapshots of actual file
//! systems … a large collection of home directories" (§5.2). This module
//! generates statistically similar snapshots: a `/home` tree with one
//! subtree per user plus a few shared project trees, with geometric nesting
//! depth and skewed files-per-directory counts. Generation is fully
//! deterministic in the seed, so every experiment is reproducible.

use dynmds_event::SimRng;

use crate::ids::InodeId;
use crate::inode::Permissions;
use crate::tree::Namespace;

/// Parameters of a synthetic snapshot.
#[derive(Clone, Debug)]
pub struct NamespaceSpec {
    /// Number of user home directories under `/home`.
    pub users: usize,
    /// Mean number of directories (beyond the home itself) per user tree.
    pub mean_dirs_per_user: f64,
    /// Geometric parameter controlling how deep new directories nest;
    /// larger means shallower trees. Must be in `(0, 1]`.
    pub depth_p: f64,
    /// Mean number of files per directory (sampled per directory).
    pub mean_files_per_dir: f64,
    /// Number of shared top-level project trees (`/proj0`, `/proj1`, …),
    /// each shaped like a user tree but world-readable.
    pub shared_trees: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NamespaceSpec {
    fn default() -> Self {
        NamespaceSpec {
            users: 100,
            mean_dirs_per_user: 10.0,
            depth_p: 0.4,
            mean_files_per_dir: 8.0,
            shared_trees: 4,
            seed: 1,
        }
    }
}

impl NamespaceSpec {
    /// Builds a spec that generates approximately `target_items` total
    /// metadata items spread over `users` home trees. The approximation
    /// solves `users * (1 + dirs) * (1 + files)` for the per-user knobs.
    pub fn with_target_items(users: usize, target_items: u64, seed: u64) -> Self {
        let users = users.max(1);
        let per_user = (target_items as f64 / users as f64).max(4.0);
        // Keep files-per-dir around the default and let directory count
        // absorb the scale, matching how real home collections grow.
        let files_per_dir = 8.0f64;
        let dirs = (per_user / (1.0 + files_per_dir)).max(1.0);
        NamespaceSpec {
            users,
            mean_dirs_per_user: dirs,
            depth_p: 0.4,
            mean_files_per_dir: files_per_dir,
            shared_trees: (users / 25).clamp(1, 8),
            seed,
        }
    }

    /// Generates the snapshot.
    pub fn generate(&self) -> Snapshot {
        assert!(self.users > 0, "at least one user tree required");
        assert!(self.depth_p > 0.0 && self.depth_p <= 1.0, "depth_p must be in (0, 1]");
        let mut rng = SimRng::seed_from_u64(self.seed);
        let mut ns = Namespace::new();
        let root = ns.root();
        let home = ns.mkdir(root, "home", Permissions::directory(0)).expect("fresh tree");

        let mut user_homes = Vec::with_capacity(self.users);
        for u in 0..self.users {
            let uid = u as u32 + 1;
            let name = format!("user{u:04}");
            let h = ns.mkdir(home, &name, Permissions::directory(uid)).expect("unique name");
            let mut sub = rng.fork(u as u64);
            grow_tree(&mut ns, &mut sub, h, uid, self, false);
            user_homes.push(h);
        }

        let mut shared_roots = Vec::with_capacity(self.shared_trees);
        for s in 0..self.shared_trees {
            let name = format!("proj{s}");
            let p = ns.mkdir(root, &name, Permissions::directory(0)).expect("unique name");
            let mut sub = rng.fork(0x5000 + s as u64);
            grow_tree(&mut ns, &mut sub, p, 0, self, true);
            shared_roots.push(p);
        }

        Snapshot { ns, user_homes, shared_roots }
    }
}

/// Expands one user/project tree in place.
fn grow_tree(
    ns: &mut Namespace,
    rng: &mut SimRng,
    tree_root: InodeId,
    uid: u32,
    spec: &NamespaceSpec,
    shared: bool,
) {
    // Directory skeleton: each new directory nests under a recent directory
    // with geometric depth preference, which yields the long-tailed depth
    // distribution of real home trees.
    let n_dirs = sample_count(rng, spec.mean_dirs_per_user);
    let mut dirs = vec![tree_root];
    for d in 0..n_dirs {
        // Walk down from the tree root a geometric number of steps through
        // already-created directories.
        let mut parent = tree_root;
        let steps = rng.geometric(spec.depth_p);
        for _ in 0..steps {
            // Prefer recently created dirs: bias toward the back half.
            let lo = dirs.len() / 2;
            let idx = rng.range(lo as u64, dirs.len() as u64) as usize;
            parent = dirs[idx];
        }
        let name = format!("d{d:03}");
        let perm = if shared { Permissions::directory(0) } else { Permissions::directory(uid) };
        if let Ok(id) = ns.mkdir(parent, &name, perm) {
            dirs.push(id);
        }
    }

    // Files: per-directory count sampled around the mean; shared trees are
    // world-readable, user trees mostly private with some shared files.
    for (i, &dir) in dirs.iter().enumerate() {
        let n_files = sample_count(rng, spec.mean_files_per_dir);
        for f in 0..n_files {
            let name = format!("f{i:03}_{f:03}");
            let perm = if shared || rng.chance(0.3) {
                Permissions::shared(uid)
            } else {
                Permissions::private(uid)
            };
            let id = ns.create_file(dir, &name, perm).expect("unique name");
            // Long-tailed file sizes: most small, some huge.
            let size = (rng.exponential(64.0 * 1024.0)) as u64;
            ns.inode_mut(id).expect("just created").size = size;
        }
    }
}

/// Samples a non-negative count with the given mean (exponential rounding;
/// long-tailed like observed files-per-directory distributions).
fn sample_count(rng: &mut SimRng, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    rng.exponential(mean).round() as usize
}

/// A generated snapshot: the namespace plus the roots the workload
/// generators anchor client locality to.
pub struct Snapshot {
    /// The file-system tree.
    pub ns: Namespace,
    /// One home directory per user, index = user.
    pub user_homes: Vec<InodeId>,
    /// Shared project trees.
    pub shared_roots: Vec<InodeId>,
}

impl Snapshot {
    /// Summary statistics, used by experiment logs and tests.
    pub fn stats(&self) -> SnapshotStats {
        let ns = &self.ns;
        let mut max_depth = 0usize;
        let mut total_depth = 0u64;
        let mut files = 0u64;
        let mut dirs = 0u64;
        for id in ns.live_ids() {
            let d = ns.depth(id).expect("live");
            max_depth = max_depth.max(d);
            total_depth += d as u64;
            if ns.is_dir(id) {
                dirs += 1;
            } else {
                files += 1;
            }
        }
        let total = files + dirs;
        SnapshotStats {
            files,
            dirs,
            total,
            max_depth,
            mean_depth: if total > 0 { total_depth as f64 / total as f64 } else { 0.0 },
            mean_files_per_dir: if dirs > 0 { files as f64 / dirs as f64 } else { 0.0 },
        }
    }
}

/// Aggregate shape of a snapshot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SnapshotStats {
    /// Live regular files (and symlinks).
    pub files: u64,
    /// Live directories.
    pub dirs: u64,
    /// Total live items.
    pub total: u64,
    /// Deepest entry.
    pub max_depth: usize,
    /// Mean depth over all entries.
    pub mean_depth: f64,
    /// Files per directory on average.
    pub mean_files_per_dir: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = NamespaceSpec { users: 10, seed: 7, ..Default::default() };
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.ns.total_items(), b.ns.total_items());
        let pa: Vec<String> = a.ns.walk(a.ns.root()).map(|i| a.ns.path_of(i).unwrap()).collect();
        let pb: Vec<String> = b.ns.walk(b.ns.root()).map(|i| b.ns.path_of(i).unwrap()).collect();
        assert_eq!(pa, pb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = NamespaceSpec { users: 10, seed: 1, ..Default::default() }.generate();
        let b = NamespaceSpec { users: 10, seed: 2, ..Default::default() }.generate();
        assert_ne!(a.ns.total_items(), b.ns.total_items());
    }

    #[test]
    fn one_home_per_user() {
        let snap = NamespaceSpec { users: 25, seed: 3, ..Default::default() }.generate();
        assert_eq!(snap.user_homes.len(), 25);
        for (u, &h) in snap.user_homes.iter().enumerate() {
            let path = snap.ns.path_of(h).unwrap();
            assert_eq!(path, format!("/home/user{u:04}"));
            assert_eq!(snap.ns.inode(h).unwrap().perm.uid, u as u32 + 1);
        }
    }

    #[test]
    fn shared_trees_exist_and_are_world_readable() {
        let spec = NamespaceSpec { users: 10, shared_trees: 3, seed: 5, ..Default::default() };
        let snap = spec.generate();
        assert_eq!(snap.shared_roots.len(), 3);
        for &p in &snap.shared_roots {
            assert!(snap.ns.is_dir(p));
            assert!(snap.ns.inode(p).unwrap().perm.allows_traverse(999));
        }
    }

    #[test]
    fn target_items_is_roughly_met() {
        for target in [2_000u64, 10_000, 40_000] {
            let spec = NamespaceSpec::with_target_items(50, target, 11);
            let snap = spec.generate();
            let total = snap.ns.total_items();
            let lo = target / 2;
            let hi = target * 2;
            assert!((lo..hi).contains(&total), "target {target} produced {total}");
        }
    }

    #[test]
    fn stats_are_consistent_with_tree() {
        let snap = NamespaceSpec { users: 20, seed: 9, ..Default::default() }.generate();
        let st = snap.stats();
        assert_eq!(st.total, snap.ns.total_items());
        assert_eq!(st.files, snap.ns.num_files());
        assert_eq!(st.dirs, snap.ns.num_dirs());
        assert!(st.max_depth >= 2, "home trees nest below /home/userX");
        assert!(st.mean_depth > 1.0);
        assert!(st.mean_files_per_dir > 0.0);
    }

    #[test]
    fn trees_have_depth_variation() {
        let snap =
            NamespaceSpec { users: 30, mean_dirs_per_user: 20.0, seed: 13, ..Default::default() }
                .generate();
        let st = snap.stats();
        assert!(st.max_depth > 3, "expected nesting, got max depth {}", st.max_depth);
    }

    #[test]
    fn user_files_are_owned_by_user() {
        let snap = NamespaceSpec { users: 5, seed: 17, ..Default::default() }.generate();
        let home0 = snap.user_homes[0];
        for id in snap.ns.walk(home0) {
            assert_eq!(snap.ns.inode(id).unwrap().perm.uid, 1);
        }
    }
}

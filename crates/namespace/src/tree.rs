//! The namespace tree: an arena of embedded-inode directory entries.
//!
//! Nodes are addressed by [`InodeId`], which doubles as the arena index.
//! Ids are never reused; unlinked nodes are tombstoned. Directory children
//! are kept in a `BTreeMap` so iteration order — and therefore every
//! simulation that walks the tree — is deterministic.
//!
//! Hard links are supported the way the paper treats them (§4.5): every
//! inode has one *primary* dentry (where the inode is embedded); additional
//! links are plain name→id entries, and the storage layer's anchor table is
//! responsible for locating multiply-linked inodes.

use std::collections::BTreeMap;
use std::fmt;

use crate::ids::InodeId;
use crate::inode::{FileType, Inode, Permissions};

/// Errors from namespace operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NamespaceError {
    /// No entry with that id / name.
    NotFound,
    /// Operation requires a directory but the target is not one.
    NotADirectory,
    /// Operation requires a non-directory but the target is a directory.
    IsADirectory,
    /// Name already taken in the target directory.
    AlreadyExists,
    /// Directory is not empty (rmdir semantics).
    NotEmpty,
    /// Rename would move a directory into its own subtree, or touch root.
    InvalidMove,
}

impl fmt::Display for NamespaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NamespaceError::NotFound => "entry not found",
            NamespaceError::NotADirectory => "not a directory",
            NamespaceError::IsADirectory => "is a directory",
            NamespaceError::AlreadyExists => "name already exists",
            NamespaceError::NotEmpty => "directory not empty",
            NamespaceError::InvalidMove => "invalid move",
        };
        f.write_str(s)
    }
}

impl std::error::Error for NamespaceError {}

pub(crate) struct Node {
    /// Primary parent directory; `None` for the root and for tombstones.
    pub(crate) parent: Option<InodeId>,
    /// Name of the primary dentry within `parent`.
    pub(crate) name: Box<str>,
    pub(crate) inode: Inode,
    /// `Some` for directories.
    pub(crate) children: Option<BTreeMap<Box<str>, InodeId>>,
    pub(crate) alive: bool,
}

/// The file-system hierarchy.
pub struct Namespace {
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: InodeId,
    pub(crate) live_files: u64,
    pub(crate) live_dirs: u64,
    /// Bumped whenever an existing live entry's primary parent or name
    /// changes — rename of a primary dentry, or hard-link promotion when
    /// a primary dentry is unlinked. Creations and deaths do *not* bump
    /// it: a new id cannot appear in any previously computed ancestor
    /// chain, and a dying entry has no live descendants (directories must
    /// be empty to unlink). Placement caches keyed on ancestor chains or
    /// primary paths stay valid exactly while this counter is unchanged.
    pub(crate) move_epoch: u64,
}

impl Namespace {
    /// Creates a namespace containing only the root directory, owned by
    /// uid 0.
    pub fn new() -> Self {
        let root_id = InodeId(0);
        let root = Node {
            parent: None,
            name: "".into(),
            inode: Inode::new(root_id, FileType::Directory, Permissions::directory(0)),
            children: Some(BTreeMap::new()),
            alive: true,
        };
        Namespace { nodes: vec![root], root: root_id, live_files: 0, live_dirs: 1, move_epoch: 0 }
    }

    /// Monotonic counter of primary-dentry moves (see the field doc); the
    /// invalidation stamp for path- and ancestry-derived caches.
    pub fn move_epoch(&self) -> u64 {
        self.move_epoch
    }

    /// Root directory id.
    pub fn root(&self) -> InodeId {
        self.root
    }

    /// Number of live regular files and symlinks.
    pub fn num_files(&self) -> u64 {
        self.live_files
    }

    /// Number of live directories (including root).
    pub fn num_dirs(&self) -> u64 {
        self.live_dirs
    }

    /// Total live metadata items.
    pub fn total_items(&self) -> u64 {
        self.live_files + self.live_dirs
    }

    /// Highest id ever allocated plus one (arena size).
    pub fn id_bound(&self) -> u64 {
        self.nodes.len() as u64
    }

    fn node(&self, id: InodeId) -> Result<&Node, NamespaceError> {
        self.nodes.get(id.index()).filter(|n| n.alive).ok_or(NamespaceError::NotFound)
    }

    fn node_mut(&mut self, id: InodeId) -> Result<&mut Node, NamespaceError> {
        self.nodes.get_mut(id.index()).filter(|n| n.alive).ok_or(NamespaceError::NotFound)
    }

    /// Whether `id` refers to a live entry.
    pub fn is_alive(&self, id: InodeId) -> bool {
        self.nodes.get(id.index()).map(|n| n.alive).unwrap_or(false)
    }

    /// The inode record for `id`.
    pub fn inode(&self, id: InodeId) -> Result<&Inode, NamespaceError> {
        self.node(id).map(|n| &n.inode)
    }

    /// Mutable inode record for `id`.
    pub fn inode_mut(&mut self, id: InodeId) -> Result<&mut Inode, NamespaceError> {
        self.node_mut(id).map(|n| &mut n.inode)
    }

    /// Primary parent directory of `id` (`None` for the root).
    pub fn parent(&self, id: InodeId) -> Result<Option<InodeId>, NamespaceError> {
        self.node(id).map(|n| n.parent)
    }

    /// Name of the primary dentry of `id` (empty for the root).
    pub fn name(&self, id: InodeId) -> Result<&str, NamespaceError> {
        self.node(id).map(|n| &*n.name)
    }

    /// Whether `id` is a directory.
    pub fn is_dir(&self, id: InodeId) -> bool {
        self.node(id).map(|n| n.inode.ftype.is_dir()).unwrap_or(false)
    }

    /// Iterates `(name, child_id)` over a directory, in name order.
    pub fn children(
        &self,
        dir: InodeId,
    ) -> Result<impl Iterator<Item = (&str, InodeId)> + '_, NamespaceError> {
        let n = self.node(dir)?;
        let map = n.children.as_ref().ok_or(NamespaceError::NotADirectory)?;
        Ok(map.iter().map(|(k, v)| (&**k, *v)))
    }

    /// Number of entries in a directory.
    pub fn child_count(&self, dir: InodeId) -> Result<usize, NamespaceError> {
        let n = self.node(dir)?;
        n.children.as_ref().map(|m| m.len()).ok_or(NamespaceError::NotADirectory)
    }

    /// Looks up `name` in `dir`.
    pub fn lookup(&self, dir: InodeId, name: &str) -> Result<InodeId, NamespaceError> {
        let n = self.node(dir)?;
        let map = n.children.as_ref().ok_or(NamespaceError::NotADirectory)?;
        map.get(name).copied().ok_or(NamespaceError::NotFound)
    }

    /// Resolves an absolute `/`-separated path to an id.
    pub fn resolve(&self, path: &str) -> Result<InodeId, NamespaceError> {
        let mut cur = self.root;
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            cur = self.lookup(cur, comp)?;
        }
        Ok(cur)
    }

    /// The absolute path of the primary dentry of `id`.
    pub fn path_of(&self, id: InodeId) -> Result<String, NamespaceError> {
        let mut comps: Vec<&str> = Vec::new();
        let mut cur = self.node(id)?;
        while let Some(p) = cur.parent {
            comps.push(&cur.name);
            cur = self.node(p)?;
        }
        if comps.is_empty() {
            return Ok("/".to_string());
        }
        let mut out = String::new();
        for c in comps.iter().rev() {
            out.push('/');
            out.push_str(c);
        }
        Ok(out)
    }

    /// Ancestors of `id`, nearest first, ending with the root. The entry
    /// itself is not included.
    pub fn ancestors(&self, id: InodeId) -> AncestorIter<'_> {
        let next = self.nodes.get(id.index()).filter(|n| n.alive).and_then(|n| n.parent);
        AncestorIter { ns: self, next }
    }

    /// Fills `buf` with the ancestors of `id`, **root first** — the
    /// reverse of [`ancestors`](Self::ancestors), and likewise excluding
    /// `id` itself. `buf` is cleared first; with sufficient capacity the
    /// call does not allocate.
    pub fn ancestors_into(&self, id: InodeId, buf: &mut Vec<InodeId>) {
        buf.clear();
        buf.extend(self.ancestors(id));
        buf.reverse();
    }

    /// Depth of `id` below the root (root is depth 0).
    pub fn depth(&self, id: InodeId) -> Result<usize, NamespaceError> {
        self.node(id)?;
        Ok(self.ancestors(id).count())
    }

    /// Whether `anc` is a strict ancestor of `id`.
    pub fn is_ancestor(&self, anc: InodeId, id: InodeId) -> bool {
        self.ancestors(id).any(|a| a == anc)
    }

    fn alloc(&mut self, node: Node) -> InodeId {
        let id = InodeId(self.nodes.len() as u64);
        debug_assert_eq!(node.inode.id, id);
        self.nodes.push(node);
        id
    }

    fn insert_child(
        &mut self,
        dir: InodeId,
        name: &str,
        ftype: FileType,
        perm: Permissions,
    ) -> Result<InodeId, NamespaceError> {
        let n = self.node(dir)?;
        let map = n.children.as_ref().ok_or(NamespaceError::NotADirectory)?;
        if map.contains_key(name) {
            return Err(NamespaceError::AlreadyExists);
        }
        let id = InodeId(self.nodes.len() as u64);
        let children = if ftype.is_dir() { Some(BTreeMap::new()) } else { None };
        self.alloc(Node {
            parent: Some(dir),
            name: name.into(),
            inode: Inode::new(id, ftype, perm),
            children,
            alive: true,
        });
        let map = self.nodes[dir.index()].children.as_mut().expect("checked directory above");
        map.insert(name.into(), id);
        if ftype.is_dir() {
            self.live_dirs += 1;
        } else {
            self.live_files += 1;
        }
        Ok(id)
    }

    /// Creates a subdirectory.
    pub fn mkdir(
        &mut self,
        parent: InodeId,
        name: &str,
        perm: Permissions,
    ) -> Result<InodeId, NamespaceError> {
        self.insert_child(parent, name, FileType::Directory, perm)
    }

    /// Creates a regular file.
    pub fn create_file(
        &mut self,
        parent: InodeId,
        name: &str,
        perm: Permissions,
    ) -> Result<InodeId, NamespaceError> {
        self.insert_child(parent, name, FileType::File, perm)
    }

    /// Creates a symlink (opaque to the metadata cluster beyond existing).
    pub fn create_symlink(
        &mut self,
        parent: InodeId,
        name: &str,
        perm: Permissions,
    ) -> Result<InodeId, NamespaceError> {
        self.insert_child(parent, name, FileType::Symlink, perm)
    }

    /// Adds a hard link `dir/name` → `target`. The target must be a file
    /// (POSIX forbids directory hard links). The new link is secondary:
    /// the inode stays embedded at its primary dentry.
    pub fn link(
        &mut self,
        target: InodeId,
        dir: InodeId,
        name: &str,
    ) -> Result<(), NamespaceError> {
        if self.node(target)?.inode.ftype.is_dir() {
            return Err(NamespaceError::IsADirectory);
        }
        let d = self.node(dir)?;
        let map = d.children.as_ref().ok_or(NamespaceError::NotADirectory)?;
        if map.contains_key(name) {
            return Err(NamespaceError::AlreadyExists);
        }
        self.nodes[dir.index()]
            .children
            .as_mut()
            .expect("checked directory above")
            .insert(name.into(), target);
        self.nodes[target.index()].inode.nlink += 1;
        Ok(())
    }

    /// Removes the entry `dir/name`. Directories must be empty. Removing a
    /// secondary hard link just drops the dentry; the inode dies when its
    /// last link is removed. Returns the id the dentry referred to.
    pub fn unlink(&mut self, dir: InodeId, name: &str) -> Result<InodeId, NamespaceError> {
        let id = self.lookup(dir, name)?;
        let target = self.node(id)?;
        let is_dir = target.inode.ftype.is_dir();
        if is_dir {
            if target.parent != Some(dir) || &*target.name != name {
                return Err(NamespaceError::NotFound);
            }
            if target.children.as_ref().map(|m| !m.is_empty()).unwrap_or(false) {
                return Err(NamespaceError::NotEmpty);
            }
        }
        self.nodes[dir.index()].children.as_mut().expect("dir checked by lookup").remove(name);
        let node = &mut self.nodes[id.index()];
        node.inode.nlink -= 1;
        let was_primary = node.parent == Some(dir) && &*node.name == name;
        if node.inode.nlink == 0 {
            node.alive = false;
            node.parent = None;
            if is_dir {
                self.live_dirs -= 1;
            } else {
                self.live_files -= 1;
            }
        } else if was_primary {
            // Promote some surviving link to primary so path_of stays total.
            if let Some((p, n)) = self.find_any_link(id) {
                let node = &mut self.nodes[id.index()];
                node.parent = Some(p);
                node.name = n;
                self.move_epoch += 1;
            }
        }
        Ok(id)
    }

    /// Finds any surviving dentry referring to `id` (O(tree); hard links
    /// are rare, per the paper, so this never shows up in profiles).
    fn find_any_link(&self, id: InodeId) -> Option<(InodeId, Box<str>)> {
        for (idx, n) in self.nodes.iter().enumerate() {
            if !n.alive {
                continue;
            }
            if let Some(map) = &n.children {
                for (name, child) in map {
                    if *child == id {
                        return Some((InodeId(idx as u64), name.clone()));
                    }
                }
            }
        }
        None
    }

    /// Moves/renames the primary dentry `old_dir/old_name` to
    /// `new_dir/new_name`. Refuses to move a directory into its own
    /// subtree, to move the root, or to clobber an existing name.
    pub fn rename(
        &mut self,
        old_dir: InodeId,
        old_name: &str,
        new_dir: InodeId,
        new_name: &str,
    ) -> Result<InodeId, NamespaceError> {
        let id = self.lookup(old_dir, old_name)?;
        if id == self.root {
            return Err(NamespaceError::InvalidMove);
        }
        // A directory may not be moved under itself or its descendants.
        if self.is_dir(id) && (id == new_dir || self.is_ancestor(id, new_dir)) {
            return Err(NamespaceError::InvalidMove);
        }
        {
            let nd = self.node(new_dir)?;
            let map = nd.children.as_ref().ok_or(NamespaceError::NotADirectory)?;
            if map.contains_key(new_name) && !(new_dir == old_dir && new_name == old_name) {
                return Err(NamespaceError::AlreadyExists);
            }
        }
        self.nodes[old_dir.index()]
            .children
            .as_mut()
            .expect("dir checked by lookup")
            .remove(old_name);
        self.nodes[new_dir.index()]
            .children
            .as_mut()
            .expect("checked directory above")
            .insert(new_name.into(), id);
        let node = &mut self.nodes[id.index()];
        if node.parent == Some(old_dir) && &*node.name == old_name {
            node.parent = Some(new_dir);
            node.name = new_name.into();
            self.move_epoch += 1;
        }
        Ok(id)
    }

    /// Changes the mode bits of `id`.
    pub fn chmod(&mut self, id: InodeId, mode: u16) -> Result<(), NamespaceError> {
        self.node_mut(id)?.inode.perm.mode = mode & 0o777;
        Ok(())
    }

    /// Verifies that `uid` may traverse every ancestor directory of `id`
    /// and read the entry itself — the path-traversal permission check the
    /// MDS performs (§4.1). Returns the number of directories visited.
    pub fn check_access(&self, id: InodeId, uid: u32) -> Result<usize, NamespaceError> {
        let mut visited = 0;
        for anc in self.ancestors(id) {
            visited += 1;
            if !self.node(anc)?.inode.perm.allows_traverse(uid) {
                return Err(NamespaceError::NotFound); // POSIX hides the entry
            }
        }
        if !self.node(id)?.inode.perm.allows_read(uid) {
            return Err(NamespaceError::NotFound);
        }
        Ok(visited)
    }

    /// Counts live items in the subtree rooted at `id` (inclusive).
    pub fn subtree_count(&self, id: InodeId) -> Result<u64, NamespaceError> {
        self.node(id)?;
        let mut count = 0u64;
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            count += 1;
            if let Ok(kids) = self.children(cur) {
                stack.extend(kids.map(|(_, c)| c));
            }
        }
        Ok(count)
    }

    /// Pre-order walk of the subtree rooted at `id` (inclusive).
    pub fn walk(&self, id: InodeId) -> WalkIter<'_> {
        let stack = if self.is_alive(id) { vec![id] } else { Vec::new() };
        WalkIter { ns: self, stack }
    }

    /// All live ids, ascending.
    pub fn live_ids(&self) -> impl Iterator<Item = InodeId> + '_ {
        self.nodes.iter().enumerate().filter(|(_, n)| n.alive).map(|(i, _)| InodeId(i as u64))
    }
}

impl Default for Namespace {
    fn default() -> Self {
        Self::new()
    }
}

/// Iterator over ancestors, nearest first. See [`Namespace::ancestors`].
pub struct AncestorIter<'a> {
    ns: &'a Namespace,
    next: Option<InodeId>,
}

impl Iterator for AncestorIter<'_> {
    type Item = InodeId;
    fn next(&mut self) -> Option<InodeId> {
        let cur = self.next?;
        self.next = self.ns.nodes.get(cur.index()).and_then(|n| n.parent);
        Some(cur)
    }
}

/// Pre-order subtree iterator. See [`Namespace::walk`].
pub struct WalkIter<'a> {
    ns: &'a Namespace,
    stack: Vec<InodeId>,
}

impl Iterator for WalkIter<'_> {
    type Item = InodeId;
    fn next(&mut self) -> Option<InodeId> {
        let cur = self.stack.pop()?;
        if let Ok(kids) = self.ns.children(cur) {
            // Push in reverse name order so pop yields name order.
            let mut ids: Vec<InodeId> = kids.map(|(_, c)| c).collect();
            ids.reverse();
            self.stack.extend(ids);
        }
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perm() -> Permissions {
        Permissions::shared(1)
    }

    fn sample() -> (Namespace, InodeId, InodeId, InodeId) {
        // /home/alice/notes.txt
        let mut ns = Namespace::new();
        let home = ns.mkdir(ns.root(), "home", Permissions::directory(1)).unwrap();
        let alice = ns.mkdir(home, "alice", Permissions::directory(1)).unwrap();
        let notes = ns.create_file(alice, "notes.txt", perm()).unwrap();
        (ns, home, alice, notes)
    }

    #[test]
    fn fresh_namespace_has_only_root() {
        let ns = Namespace::new();
        assert_eq!(ns.total_items(), 1);
        assert_eq!(ns.num_dirs(), 1);
        assert_eq!(ns.num_files(), 0);
        assert_eq!(ns.path_of(ns.root()).unwrap(), "/");
        assert_eq!(ns.depth(ns.root()).unwrap(), 0);
    }

    #[test]
    fn create_and_lookup() {
        let (ns, home, alice, notes) = sample();
        assert_eq!(ns.lookup(ns.root(), "home").unwrap(), home);
        assert_eq!(ns.lookup(home, "alice").unwrap(), alice);
        assert_eq!(ns.lookup(alice, "notes.txt").unwrap(), notes);
        assert_eq!(ns.num_files(), 1);
        assert_eq!(ns.num_dirs(), 3);
    }

    #[test]
    fn paths_round_trip_through_resolve() {
        let (ns, _, alice, notes) = sample();
        assert_eq!(ns.path_of(notes).unwrap(), "/home/alice/notes.txt");
        assert_eq!(ns.resolve("/home/alice/notes.txt").unwrap(), notes);
        assert_eq!(ns.resolve("/home/alice").unwrap(), alice);
        assert_eq!(ns.resolve("/").unwrap(), ns.root());
        assert_eq!(ns.resolve("//home//alice/").unwrap(), alice);
    }

    #[test]
    fn duplicate_names_rejected() {
        let (mut ns, home, _, _) = sample();
        assert_eq!(ns.mkdir(home, "alice", perm()), Err(NamespaceError::AlreadyExists));
        assert_eq!(ns.create_file(home, "alice", perm()), Err(NamespaceError::AlreadyExists));
    }

    #[test]
    fn files_cannot_hold_children() {
        let (mut ns, _, _, notes) = sample();
        assert_eq!(ns.create_file(notes, "x", perm()), Err(NamespaceError::NotADirectory));
        assert_eq!(ns.lookup(notes, "x"), Err(NamespaceError::NotADirectory));
        assert!(ns.children(notes).is_err());
    }

    #[test]
    fn ancestors_walk_to_root() {
        let (ns, home, alice, notes) = sample();
        let ancs: Vec<InodeId> = ns.ancestors(notes).collect();
        assert_eq!(ancs, vec![alice, home, ns.root()]);
        assert_eq!(ns.depth(notes).unwrap(), 3);
        assert!(ns.is_ancestor(home, notes));
        assert!(!ns.is_ancestor(notes, home));
        assert!(!ns.is_ancestor(notes, notes), "not a strict ancestor of itself");
    }

    #[test]
    fn unlink_file_frees_it() {
        let (mut ns, _, alice, notes) = sample();
        assert_eq!(ns.unlink(alice, "notes.txt").unwrap(), notes);
        assert!(!ns.is_alive(notes));
        assert_eq!(ns.num_files(), 0);
        assert_eq!(ns.lookup(alice, "notes.txt"), Err(NamespaceError::NotFound));
        assert_eq!(ns.inode(notes), Err(NamespaceError::NotFound));
    }

    #[test]
    fn rmdir_requires_empty() {
        let (mut ns, home, _, _) = sample();
        assert_eq!(ns.unlink(home, "alice"), Err(NamespaceError::NotEmpty));
        let alice = ns.lookup(home, "alice").unwrap();
        ns.unlink(alice, "notes.txt").unwrap();
        ns.unlink(home, "alice").unwrap();
        assert_eq!(ns.num_dirs(), 2);
    }

    #[test]
    fn rename_moves_subtree() {
        let (mut ns, home, alice, notes) = sample();
        let bob = ns.mkdir(home, "bob", perm()).unwrap();
        ns.rename(home, "alice", bob, "alice2").unwrap();
        assert_eq!(ns.path_of(notes).unwrap(), "/home/bob/alice2/notes.txt");
        assert_eq!(ns.parent(alice).unwrap(), Some(bob));
        assert_eq!(ns.resolve("/home/bob/alice2/notes.txt").unwrap(), notes);
        assert_eq!(ns.resolve("/home/alice/notes.txt"), Err(NamespaceError::NotFound));
    }

    #[test]
    fn rename_within_directory_renames() {
        let (mut ns, _, alice, notes) = sample();
        ns.rename(alice, "notes.txt", alice, "todo.txt").unwrap();
        assert_eq!(ns.path_of(notes).unwrap(), "/home/alice/todo.txt");
    }

    #[test]
    fn rename_rejects_cycle() {
        let (mut ns, home, alice, _) = sample();
        let deep = ns.mkdir(alice, "deep", perm()).unwrap();
        assert_eq!(ns.rename(home, "alice", deep, "x"), Err(NamespaceError::InvalidMove));
        assert_eq!(ns.rename(home, "alice", alice, "x"), Err(NamespaceError::InvalidMove));
    }

    #[test]
    fn rename_rejects_clobber() {
        let (mut ns, home, _, _) = sample();
        ns.mkdir(home, "bob", perm()).unwrap();
        assert_eq!(ns.rename(home, "alice", home, "bob"), Err(NamespaceError::AlreadyExists));
    }

    #[test]
    fn rename_onto_itself_is_ok() {
        let (mut ns, home, alice, _) = sample();
        ns.rename(home, "alice", home, "alice").unwrap();
        assert_eq!(ns.parent(alice).unwrap(), Some(home));
    }

    #[test]
    fn hard_links_share_an_inode() {
        let (mut ns, home, alice, notes) = sample();
        ns.link(notes, home, "notes-link").unwrap();
        assert_eq!(ns.inode(notes).unwrap().nlink, 2);
        assert_eq!(ns.lookup(home, "notes-link").unwrap(), notes);
        // Primary path unchanged.
        assert_eq!(ns.path_of(notes).unwrap(), "/home/alice/notes.txt");
        // Dropping the secondary link keeps the inode alive.
        ns.unlink(home, "notes-link").unwrap();
        assert!(ns.is_alive(notes));
        assert_eq!(ns.inode(notes).unwrap().nlink, 1);
        // Dropping the last link kills it.
        ns.unlink(alice, "notes.txt").unwrap();
        assert!(!ns.is_alive(notes));
    }

    #[test]
    fn unlinking_primary_promotes_secondary() {
        let (mut ns, home, alice, notes) = sample();
        ns.link(notes, home, "notes-link").unwrap();
        ns.unlink(alice, "notes.txt").unwrap();
        assert!(ns.is_alive(notes));
        assert_eq!(ns.path_of(notes).unwrap(), "/home/notes-link");
        assert_eq!(ns.inode(notes).unwrap().nlink, 1);
    }

    #[test]
    fn directory_hard_links_rejected() {
        let (mut ns, home, alice, _) = sample();
        assert_eq!(ns.link(alice, home, "alias"), Err(NamespaceError::IsADirectory));
    }

    #[test]
    fn chmod_masks_mode() {
        let (mut ns, _, _, notes) = sample();
        ns.chmod(notes, 0o7777).unwrap();
        assert_eq!(ns.inode(notes).unwrap().perm.mode, 0o777);
    }

    #[test]
    fn check_access_walks_prefix() {
        let (mut ns, _, alice, notes) = sample();
        assert_eq!(ns.check_access(notes, 1).unwrap(), 3);
        // Lock alice's directory against others: uid 2 loses access.
        ns.inode_mut(alice).unwrap().perm = Permissions { uid: 1, mode: 0o700 };
        assert_eq!(ns.check_access(notes, 1).unwrap(), 3);
        assert_eq!(ns.check_access(notes, 2), Err(NamespaceError::NotFound));
    }

    #[test]
    fn subtree_count_counts_inclusively() {
        let (ns, home, alice, _) = sample();
        assert_eq!(ns.subtree_count(alice).unwrap(), 2);
        assert_eq!(ns.subtree_count(home).unwrap(), 3);
        assert_eq!(ns.subtree_count(ns.root()).unwrap(), 4);
    }

    #[test]
    fn walk_is_preorder_name_ordered() {
        let (mut ns, home, _, _) = sample();
        ns.mkdir(home, "bob", perm()).unwrap();
        let order: Vec<String> = ns.walk(ns.root()).map(|id| ns.path_of(id).unwrap()).collect();
        assert_eq!(order, vec!["/", "/home", "/home/alice", "/home/alice/notes.txt", "/home/bob"]);
    }

    #[test]
    fn walk_of_dead_node_is_empty() {
        let (mut ns, _, alice, notes) = sample();
        ns.unlink(alice, "notes.txt").unwrap();
        assert_eq!(ns.walk(notes).count(), 0);
    }

    #[test]
    fn live_ids_skip_tombstones() {
        let (mut ns, _, alice, notes) = sample();
        ns.unlink(alice, "notes.txt").unwrap();
        assert!(!ns.live_ids().any(|id| id == notes));
        assert_eq!(ns.live_ids().count(), 3);
    }

    #[test]
    fn children_iterate_in_name_order() {
        let mut ns = Namespace::new();
        for name in ["zeta", "alpha", "mid"] {
            ns.create_file(ns.root(), name, perm()).unwrap();
        }
        let names: Vec<&str> = ns.children(ns.root()).unwrap().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn ids_are_never_reused() {
        let mut ns = Namespace::new();
        let a = ns.create_file(ns.root(), "a", perm()).unwrap();
        ns.unlink(ns.root(), "a").unwrap();
        let b = ns.create_file(ns.root(), "a", perm()).unwrap();
        assert_ne!(a, b);
    }
}

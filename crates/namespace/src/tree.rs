//! The namespace tree: struct-of-arrays storage with interned names.
//!
//! Nodes are addressed by [`InodeId`], which doubles as the arena index.
//! Ids are never reused; unlinked nodes are tombstoned. Unlike the
//! original arena-of-structs layout, every field lives in its own dense
//! column and dentry names are interned `u32` symbols, so a node costs
//! ~39 bytes of column data plus its share of the directory tables —
//! the layout the 10⁸-inode scale tier (ROADMAP item 1) needs to fit in
//! memory. Directory children are kept in per-directory tables sorted by
//! name bytes, so iteration order — and therefore every simulation that
//! walks the tree — is deterministic and identical to the previous
//! `BTreeMap<Box<str>, _>` representation.
//!
//! Hard links are supported the way the paper treats them (§4.5): every
//! inode has one *primary* dentry (where the inode is embedded); additional
//! links are plain name→id entries, and the storage layer's anchor table is
//! responsible for locating multiply-linked inodes.

use std::fmt;

use crate::ids::InodeId;
use crate::inode::{FileType, Inode, Permissions};
use crate::intern::Interner;

/// Errors from namespace operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NamespaceError {
    /// No entry with that id / name.
    NotFound,
    /// Operation requires a directory but the target is not one.
    NotADirectory,
    /// Operation requires a non-directory but the target is a directory.
    IsADirectory,
    /// Name already taken in the target directory.
    AlreadyExists,
    /// Directory is not empty (rmdir semantics).
    NotEmpty,
    /// Rename would move a directory into its own subtree, or touch root.
    InvalidMove,
}

impl fmt::Display for NamespaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NamespaceError::NotFound => "entry not found",
            NamespaceError::NotADirectory => "not a directory",
            NamespaceError::IsADirectory => "is a directory",
            NamespaceError::AlreadyExists => "name already exists",
            NamespaceError::NotEmpty => "directory not empty",
            NamespaceError::InvalidMove => "invalid move",
        };
        f.write_str(s)
    }
}

impl std::error::Error for NamespaceError {}

/// Column sentinel for "no parent" / "no directory table".
pub(crate) const NONE_U32: u32 = u32::MAX;

/// `flags` column: low two bits encode [`FileType`], bit 2 is liveness.
const FLAG_ALIVE: u8 = 0b100;
const FTYPE_MASK: u8 = 0b011;

#[inline]
fn ftype_code(ft: FileType) -> u8 {
    match ft {
        FileType::File => 0,
        FileType::Directory => 1,
        FileType::Symlink => 2,
    }
}

#[inline]
fn ftype_decode(flags: u8) -> FileType {
    match flags & FTYPE_MASK {
        0 => FileType::File,
        1 => FileType::Directory,
        _ => FileType::Symlink,
    }
}

/// One sorted dentry: interned name symbol plus child slot.
#[derive(Clone, Copy, Debug)]
pub(crate) struct DirEnt {
    pub(crate) sym: u32,
    pub(crate) child: u32,
}

/// The file-system hierarchy, stored as parallel columns indexed by
/// [`InodeId`].
pub struct Namespace {
    /// Interned dentry-name vocabulary shared by all columns.
    pub(crate) names: Interner,
    /// Primary parent slot; [`NONE_U32`] for the root and tombstones.
    pub(crate) parent: Vec<u32>,
    /// Interned name of the primary dentry.
    pub(crate) name_sym: Vec<u32>,
    /// File type + liveness bits.
    pub(crate) flags: Vec<u8>,
    /// Owning uid.
    pub(crate) uid: Vec<u32>,
    /// Mode bits.
    pub(crate) mode: Vec<u16>,
    /// File size in bytes.
    pub(crate) size: Vec<u64>,
    /// Last-modification time, simulator microseconds.
    pub(crate) mtime_us: Vec<u64>,
    /// Hard-link count.
    pub(crate) nlink: Vec<u32>,
    /// Index into `tables` for directories; [`NONE_U32`] otherwise.
    pub(crate) childtab: Vec<u32>,
    /// Per-directory dentry tables, each sorted by name bytes.
    pub(crate) tables: Vec<Vec<DirEnt>>,
    pub(crate) root: InodeId,
    pub(crate) live_files: u64,
    pub(crate) live_dirs: u64,
    /// Bumped whenever an existing live entry's primary parent or name
    /// changes — rename of a primary dentry, or hard-link promotion when
    /// a primary dentry is unlinked. Creations and deaths do *not* bump
    /// it: a new id cannot appear in any previously computed ancestor
    /// chain, and a dying entry has no live descendants (directories must
    /// be empty to unlink). Placement caches keyed on ancestor chains or
    /// primary paths stay valid exactly while this counter is unchanged.
    pub(crate) move_epoch: u64,
}

impl Namespace {
    /// Creates a namespace containing only the root directory, owned by
    /// uid 0.
    pub fn new() -> Self {
        let mut ns = Namespace::raw_empty();
        let root_id = InodeId(0);
        let root = Inode::new(root_id, FileType::Directory, Permissions::directory(0));
        ns.push_slot(None, "", &root, true);
        ns.live_dirs = 1;
        ns
    }

    /// An entirely empty column set — no root. Only the persistence layer
    /// uses this, to rebuild arbitrary slot layouts from an image.
    pub(crate) fn raw_empty() -> Self {
        Namespace {
            names: Interner::new(),
            parent: Vec::new(),
            name_sym: Vec::new(),
            flags: Vec::new(),
            uid: Vec::new(),
            mode: Vec::new(),
            size: Vec::new(),
            mtime_us: Vec::new(),
            nlink: Vec::new(),
            childtab: Vec::new(),
            tables: Vec::new(),
            root: InodeId(0),
            live_files: 0,
            live_dirs: 0,
            move_epoch: 0,
        }
    }

    /// Appends one arena slot with the given fields, without touching any
    /// dentry table or live counter. `id` must equal the new slot index.
    pub(crate) fn push_slot(
        &mut self,
        parent: Option<InodeId>,
        name: &str,
        ino: &Inode,
        alive: bool,
    ) {
        let idx = self.parent.len();
        assert!(idx < NONE_U32 as usize, "namespace exceeds the u32 slot space");
        debug_assert_eq!(ino.id.index(), idx);
        let sym = self.names.intern(name);
        self.parent.push(parent.map(|p| p.0 as u32).unwrap_or(NONE_U32));
        self.name_sym.push(sym);
        self.flags.push(ftype_code(ino.ftype) | if alive { FLAG_ALIVE } else { 0 });
        self.uid.push(ino.perm.uid);
        self.mode.push(ino.perm.mode);
        self.size.push(ino.size);
        self.mtime_us.push(ino.mtime_us);
        self.nlink.push(ino.nlink);
        if ino.ftype.is_dir() {
            let t = u32::try_from(self.tables.len()).expect("directory table index overflow");
            self.tables.push(Vec::new());
            self.childtab.push(t);
        } else {
            self.childtab.push(NONE_U32);
        }
    }

    /// Sorted-position lookup of `name` in directory table `ti`.
    #[inline]
    fn find_in(&self, ti: usize, name: &str) -> Result<usize, usize> {
        let names = &self.names;
        self.tables[ti].binary_search_by(|e| names.resolve(e.sym).cmp(name))
    }

    /// Inserts `name → child` into directory table `ti`, keeping it
    /// sorted. Returns `false` (and inserts nothing) on a duplicate name.
    pub(crate) fn dentry_insert(&mut self, ti: usize, name: &str, child: u32) -> bool {
        match self.find_in(ti, name) {
            Ok(_) => false,
            Err(pos) => {
                let sym = self.names.intern(name);
                self.tables[ti].insert(pos, DirEnt { sym, child });
                true
            }
        }
    }

    /// Live slot index for `id`.
    #[inline]
    fn check(&self, id: InodeId) -> Result<usize, NamespaceError> {
        let i = id.index();
        if i < self.flags.len() && self.flags[i] & FLAG_ALIVE != 0 {
            Ok(i)
        } else {
            Err(NamespaceError::NotFound)
        }
    }

    /// Directory table index for a live directory `dir`.
    #[inline]
    fn dir_table(&self, dir: InodeId) -> Result<usize, NamespaceError> {
        let i = self.check(dir)?;
        let t = self.childtab[i];
        if t == NONE_U32 {
            return Err(NamespaceError::NotADirectory);
        }
        Ok(t as usize)
    }

    /// Monotonic counter of primary-dentry moves (see the field doc); the
    /// invalidation stamp for path- and ancestry-derived caches.
    pub fn move_epoch(&self) -> u64 {
        self.move_epoch
    }

    /// Root directory id.
    pub fn root(&self) -> InodeId {
        self.root
    }

    /// Number of live regular files and symlinks.
    pub fn num_files(&self) -> u64 {
        self.live_files
    }

    /// Number of live directories (including root).
    pub fn num_dirs(&self) -> u64 {
        self.live_dirs
    }

    /// Total live metadata items.
    pub fn total_items(&self) -> u64 {
        self.live_files + self.live_dirs
    }

    /// Highest id ever allocated plus one (arena size).
    pub fn id_bound(&self) -> u64 {
        self.parent.len() as u64
    }

    /// Whether `id` refers to a live entry.
    pub fn is_alive(&self, id: InodeId) -> bool {
        self.check(id).is_ok()
    }

    /// The inode record for `id`, materialized from the columns.
    pub fn inode(&self, id: InodeId) -> Result<Inode, NamespaceError> {
        let i = self.check(id)?;
        Ok(Inode {
            id,
            ftype: ftype_decode(self.flags[i]),
            perm: Permissions { uid: self.uid[i], mode: self.mode[i] },
            size: self.size[i],
            mtime_us: self.mtime_us[i],
            nlink: self.nlink[i],
        })
    }

    /// Applies `f` to the inode record of `id` and writes the mutable
    /// fields (permissions, size, mtime, nlink) back to the columns. The
    /// id and file type are fixed at creation; changes to them are
    /// ignored. This replaces the old `inode_mut` accessor, which cannot
    /// exist over column storage.
    pub fn update_inode<R>(
        &mut self,
        id: InodeId,
        f: impl FnOnce(&mut Inode) -> R,
    ) -> Result<R, NamespaceError> {
        let i = self.check(id)?;
        let mut ino = self.inode(id)?;
        let r = f(&mut ino);
        self.uid[i] = ino.perm.uid;
        self.mode[i] = ino.perm.mode;
        self.size[i] = ino.size;
        self.mtime_us[i] = ino.mtime_us;
        self.nlink[i] = ino.nlink;
        Ok(r)
    }

    /// Primary parent directory of `id` (`None` for the root).
    pub fn parent(&self, id: InodeId) -> Result<Option<InodeId>, NamespaceError> {
        let i = self.check(id)?;
        let p = self.parent[i];
        Ok((p != NONE_U32).then_some(InodeId(p as u64)))
    }

    /// Name of the primary dentry of `id` (empty for the root).
    pub fn name(&self, id: InodeId) -> Result<&str, NamespaceError> {
        let i = self.check(id)?;
        Ok(self.names.resolve(self.name_sym[i]))
    }

    /// Interned symbol of the primary dentry name of `id`. Symbols are
    /// stable for the life of the namespace and equal symbols mean equal
    /// names, so hot paths can compare/hash names without touching bytes.
    pub fn name_sym(&self, id: InodeId) -> Result<u32, NamespaceError> {
        let i = self.check(id)?;
        Ok(self.name_sym[i])
    }

    /// The name behind an interned symbol obtained from
    /// [`name_sym`](Self::name_sym) or [`children_syms`](Self::children_syms).
    pub fn resolve_sym(&self, sym: u32) -> &str {
        self.names.resolve(sym)
    }

    /// Whether `id` is a directory.
    pub fn is_dir(&self, id: InodeId) -> bool {
        self.check(id).map(|i| self.flags[i] & FTYPE_MASK == 1).unwrap_or(false)
    }

    /// Iterates `(name, child_id)` over a directory, in name order.
    pub fn children(
        &self,
        dir: InodeId,
    ) -> Result<impl Iterator<Item = (&str, InodeId)> + '_, NamespaceError> {
        let ti = self.dir_table(dir)?;
        Ok(self.tables[ti]
            .iter()
            .map(move |e| (self.names.resolve(e.sym), InodeId(e.child as u64))))
    }

    /// Iterates `(name_symbol, child_id)` over a directory, in name order,
    /// without resolving name bytes — the traversal hot path for consumers
    /// that only compare or hash names.
    pub fn children_syms(
        &self,
        dir: InodeId,
    ) -> Result<impl Iterator<Item = (u32, InodeId)> + '_, NamespaceError> {
        let ti = self.dir_table(dir)?;
        Ok(self.tables[ti].iter().map(|e| (e.sym, InodeId(e.child as u64))))
    }

    /// Number of entries in a directory.
    pub fn child_count(&self, dir: InodeId) -> Result<usize, NamespaceError> {
        let ti = self.dir_table(dir)?;
        Ok(self.tables[ti].len())
    }

    /// Looks up `name` in `dir`.
    pub fn lookup(&self, dir: InodeId, name: &str) -> Result<InodeId, NamespaceError> {
        let ti = self.dir_table(dir)?;
        match self.find_in(ti, name) {
            Ok(pos) => Ok(InodeId(self.tables[ti][pos].child as u64)),
            Err(_) => Err(NamespaceError::NotFound),
        }
    }

    /// Resolves an absolute `/`-separated path to an id.
    pub fn resolve(&self, path: &str) -> Result<InodeId, NamespaceError> {
        let mut cur = self.root;
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            cur = self.lookup(cur, comp)?;
        }
        Ok(cur)
    }

    /// The absolute path of the primary dentry of `id`.
    pub fn path_of(&self, id: InodeId) -> Result<String, NamespaceError> {
        let mut syms: Vec<u32> = Vec::new();
        let mut i = self.check(id)?;
        while self.parent[i] != NONE_U32 {
            syms.push(self.name_sym[i]);
            i = self.check(InodeId(self.parent[i] as u64))?;
        }
        if syms.is_empty() {
            return Ok("/".to_string());
        }
        let mut out = String::new();
        for &s in syms.iter().rev() {
            out.push('/');
            out.push_str(self.names.resolve(s));
        }
        Ok(out)
    }

    /// Calls `f` once per path component of `id`'s primary path, **root
    /// first** — the same components [`path_of`](Self::path_of) would join
    /// with `/`, but without building a `String`. The root itself has zero
    /// components. Returns the component count. Deep paths beyond a small
    /// inline buffer spill to a heap allocation.
    pub fn visit_path<F: FnMut(&str)>(
        &self,
        id: InodeId,
        mut f: F,
    ) -> Result<usize, NamespaceError> {
        let mut head = [0u32; 32];
        let mut n = 0usize;
        let mut spill: Vec<u32> = Vec::new();
        let mut i = self.check(id)?;
        while self.parent[i] != NONE_U32 {
            let s = self.name_sym[i];
            if n < head.len() {
                head[n] = s;
            } else {
                spill.push(s);
            }
            n += 1;
            i = self.check(InodeId(self.parent[i] as u64))?;
        }
        for &s in spill.iter().rev() {
            f(self.names.resolve(s));
        }
        for k in (0..n.min(head.len())).rev() {
            f(self.names.resolve(head[k]));
        }
        Ok(n)
    }

    /// Raw parent pointer, ignoring liveness (tombstones have none).
    #[inline]
    fn parent_raw(&self, id: InodeId) -> Option<InodeId> {
        let i = id.index();
        if i < self.parent.len() && self.parent[i] != NONE_U32 {
            Some(InodeId(self.parent[i] as u64))
        } else {
            None
        }
    }

    /// Ancestors of `id`, nearest first, ending with the root. The entry
    /// itself is not included.
    pub fn ancestors(&self, id: InodeId) -> AncestorIter<'_> {
        let next = if self.check(id).is_ok() { self.parent_raw(id) } else { None };
        AncestorIter { ns: self, next }
    }

    /// Fills `buf` with the ancestors of `id`, **root first** — the
    /// reverse of [`ancestors`](Self::ancestors), and likewise excluding
    /// `id` itself. `buf` is cleared first; with sufficient capacity the
    /// call does not allocate.
    pub fn ancestors_into(&self, id: InodeId, buf: &mut Vec<InodeId>) {
        buf.clear();
        buf.extend(self.ancestors(id));
        buf.reverse();
    }

    /// Depth of `id` below the root (root is depth 0).
    pub fn depth(&self, id: InodeId) -> Result<usize, NamespaceError> {
        self.check(id)?;
        Ok(self.ancestors(id).count())
    }

    /// Whether `anc` is a strict ancestor of `id`.
    pub fn is_ancestor(&self, anc: InodeId, id: InodeId) -> bool {
        self.ancestors(id).any(|a| a == anc)
    }

    fn insert_child(
        &mut self,
        dir: InodeId,
        name: &str,
        ftype: FileType,
        perm: Permissions,
    ) -> Result<InodeId, NamespaceError> {
        let ti = self.dir_table(dir)?;
        if self.find_in(ti, name).is_ok() {
            return Err(NamespaceError::AlreadyExists);
        }
        let id = InodeId(self.parent.len() as u64);
        let ino = Inode::new(id, ftype, perm);
        self.push_slot(Some(dir), name, &ino, true);
        let inserted = self.dentry_insert(ti, name, id.0 as u32);
        debug_assert!(inserted, "checked for duplicates above");
        if ftype.is_dir() {
            self.live_dirs += 1;
        } else {
            self.live_files += 1;
        }
        Ok(id)
    }

    /// Creates a subdirectory.
    pub fn mkdir(
        &mut self,
        parent: InodeId,
        name: &str,
        perm: Permissions,
    ) -> Result<InodeId, NamespaceError> {
        self.insert_child(parent, name, FileType::Directory, perm)
    }

    /// Creates a regular file.
    pub fn create_file(
        &mut self,
        parent: InodeId,
        name: &str,
        perm: Permissions,
    ) -> Result<InodeId, NamespaceError> {
        self.insert_child(parent, name, FileType::File, perm)
    }

    /// Creates a symlink (opaque to the metadata cluster beyond existing).
    pub fn create_symlink(
        &mut self,
        parent: InodeId,
        name: &str,
        perm: Permissions,
    ) -> Result<InodeId, NamespaceError> {
        self.insert_child(parent, name, FileType::Symlink, perm)
    }

    /// Adds a hard link `dir/name` → `target`. The target must be a file
    /// (POSIX forbids directory hard links). The new link is secondary:
    /// the inode stays embedded at its primary dentry.
    pub fn link(
        &mut self,
        target: InodeId,
        dir: InodeId,
        name: &str,
    ) -> Result<(), NamespaceError> {
        let t = self.check(target)?;
        if self.flags[t] & FTYPE_MASK == 1 {
            return Err(NamespaceError::IsADirectory);
        }
        let ti = self.dir_table(dir)?;
        if self.find_in(ti, name).is_ok() {
            return Err(NamespaceError::AlreadyExists);
        }
        self.dentry_insert(ti, name, target.0 as u32);
        self.nlink[t] += 1;
        Ok(())
    }

    /// Removes the entry `dir/name`. Directories must be empty. Removing a
    /// secondary hard link just drops the dentry; the inode dies when its
    /// last link is removed. Returns the id the dentry referred to.
    pub fn unlink(&mut self, dir: InodeId, name: &str) -> Result<InodeId, NamespaceError> {
        let ti = self.dir_table(dir)?;
        let pos = self.find_in(ti, name).map_err(|_| NamespaceError::NotFound)?;
        let ent = self.tables[ti][pos];
        let id = InodeId(ent.child as u64);
        let i = self.check(id)?;
        let is_dir = self.flags[i] & FTYPE_MASK == 1;
        let was_primary = self.parent[i] == dir.0 as u32 && self.name_sym[i] == ent.sym;
        if is_dir {
            if !was_primary {
                return Err(NamespaceError::NotFound);
            }
            if !self.tables[self.childtab[i] as usize].is_empty() {
                return Err(NamespaceError::NotEmpty);
            }
        }
        self.tables[ti].remove(pos);
        self.nlink[i] -= 1;
        if self.nlink[i] == 0 {
            self.flags[i] &= !FLAG_ALIVE;
            self.parent[i] = NONE_U32;
            if is_dir {
                self.live_dirs -= 1;
            } else {
                self.live_files -= 1;
            }
        } else if was_primary {
            // Promote some surviving link to primary so path_of stays total.
            if let Some((p, sym)) = self.find_any_link(id) {
                self.parent[i] = p.0 as u32;
                self.name_sym[i] = sym;
                self.move_epoch += 1;
            }
        }
        Ok(id)
    }

    /// Finds any surviving dentry referring to `id` (O(tree); hard links
    /// are rare, per the paper, so this never shows up in profiles).
    /// Returns the directory and the interned dentry name.
    fn find_any_link(&self, id: InodeId) -> Option<(InodeId, u32)> {
        let target = id.0 as u32;
        for idx in 0..self.parent.len() {
            if self.flags[idx] & FLAG_ALIVE == 0 || self.childtab[idx] == NONE_U32 {
                continue;
            }
            for e in &self.tables[self.childtab[idx] as usize] {
                if e.child == target {
                    return Some((InodeId(idx as u64), e.sym));
                }
            }
        }
        None
    }

    /// Moves/renames the primary dentry `old_dir/old_name` to
    /// `new_dir/new_name`. Refuses to move a directory into its own
    /// subtree, to move the root, or to clobber an existing name.
    pub fn rename(
        &mut self,
        old_dir: InodeId,
        old_name: &str,
        new_dir: InodeId,
        new_name: &str,
    ) -> Result<InodeId, NamespaceError> {
        let old_ti = self.dir_table(old_dir)?;
        let old_pos = self.find_in(old_ti, old_name).map_err(|_| NamespaceError::NotFound)?;
        let ent = self.tables[old_ti][old_pos];
        let id = InodeId(ent.child as u64);
        if id == self.root {
            return Err(NamespaceError::InvalidMove);
        }
        // A directory may not be moved under itself or its descendants.
        if self.is_dir(id) && (id == new_dir || self.is_ancestor(id, new_dir)) {
            return Err(NamespaceError::InvalidMove);
        }
        let new_ti = self.dir_table(new_dir)?;
        if self.find_in(new_ti, new_name).is_ok() && !(new_dir == old_dir && new_name == old_name) {
            return Err(NamespaceError::AlreadyExists);
        }
        // Re-locate after the table index may have shifted is unnecessary —
        // tables are stable between the lookups above — but the old entry
        // position is recomputed defensively if both dirs share a table.
        let old_pos = self.find_in(old_ti, old_name).expect("entry located above");
        self.tables[old_ti].remove(old_pos);
        self.dentry_insert(new_ti, new_name, id.0 as u32);
        let i = id.index();
        if self.parent[i] == old_dir.0 as u32 && self.name_sym[i] == ent.sym {
            self.parent[i] = new_dir.0 as u32;
            self.name_sym[i] = self.names.intern(new_name);
            self.move_epoch += 1;
        }
        Ok(id)
    }

    /// Changes the mode bits of `id`.
    pub fn chmod(&mut self, id: InodeId, mode: u16) -> Result<(), NamespaceError> {
        let i = self.check(id)?;
        self.mode[i] = mode & 0o777;
        Ok(())
    }

    /// Verifies that `uid` may traverse every ancestor directory of `id`
    /// and read the entry itself — the path-traversal permission check the
    /// MDS performs (§4.1). Returns the number of directories visited.
    pub fn check_access(&self, id: InodeId, uid: u32) -> Result<usize, NamespaceError> {
        let mut visited = 0;
        for anc in self.ancestors(id) {
            visited += 1;
            let a = self.check(anc)?;
            let perm = Permissions { uid: self.uid[a], mode: self.mode[a] };
            if !perm.allows_traverse(uid) {
                return Err(NamespaceError::NotFound); // POSIX hides the entry
            }
        }
        let i = self.check(id)?;
        let perm = Permissions { uid: self.uid[i], mode: self.mode[i] };
        if !perm.allows_read(uid) {
            return Err(NamespaceError::NotFound);
        }
        Ok(visited)
    }

    /// Counts live items in the subtree rooted at `id` (inclusive).
    pub fn subtree_count(&self, id: InodeId) -> Result<u64, NamespaceError> {
        self.check(id)?;
        let mut count = 0u64;
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            count += 1;
            if let Ok(kids) = self.children(cur) {
                stack.extend(kids.map(|(_, c)| c));
            }
        }
        Ok(count)
    }

    /// Pre-order walk of the subtree rooted at `id` (inclusive).
    pub fn walk(&self, id: InodeId) -> WalkIter<'_> {
        let stack = if self.is_alive(id) { vec![id] } else { Vec::new() };
        WalkIter { ns: self, stack }
    }

    /// All live ids, ascending.
    pub fn live_ids(&self) -> impl Iterator<Item = InodeId> + '_ {
        self.flags
            .iter()
            .enumerate()
            .filter(|(_, &f)| f & FLAG_ALIVE != 0)
            .map(|(i, _)| InodeId(i as u64))
    }

    /// Releases excess column and table capacity back to the allocator.
    /// Amortized Vec growth can leave capacities near 2× length right
    /// after a build; the scale tier calls this once after materializing
    /// its snapshot so [`heap_bytes`](Self::heap_bytes) — and actual RSS —
    /// reflect the tree, not the growth schedule.
    pub fn shrink_to_fit(&mut self) {
        self.parent.shrink_to_fit();
        self.name_sym.shrink_to_fit();
        self.flags.shrink_to_fit();
        self.uid.shrink_to_fit();
        self.mode.shrink_to_fit();
        self.size.shrink_to_fit();
        self.mtime_us.shrink_to_fit();
        self.nlink.shrink_to_fit();
        self.childtab.shrink_to_fit();
        for t in &mut self.tables {
            t.shrink_to_fit();
        }
        self.tables.shrink_to_fit();
    }

    /// Heap bytes held by the namespace: every column's capacity, the
    /// directory tables, and the name interner. This is the number the
    /// scale tier budgets (`namespace_bytes_per_inode`); it counts
    /// capacities, matching what the allocator actually handed out.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut b = self.parent.capacity() * size_of::<u32>()
            + self.name_sym.capacity() * size_of::<u32>()
            + self.flags.capacity()
            + self.uid.capacity() * size_of::<u32>()
            + self.mode.capacity() * size_of::<u16>()
            + self.size.capacity() * size_of::<u64>()
            + self.mtime_us.capacity() * size_of::<u64>()
            + self.nlink.capacity() * size_of::<u32>()
            + self.childtab.capacity() * size_of::<u32>()
            + self.tables.capacity() * size_of::<Vec<DirEnt>>()
            + self.names.heap_bytes();
        for t in &self.tables {
            b += t.capacity() * size_of::<DirEnt>();
        }
        b
    }
}

impl Default for Namespace {
    fn default() -> Self {
        Self::new()
    }
}

/// Iterator over ancestors, nearest first. See [`Namespace::ancestors`].
pub struct AncestorIter<'a> {
    ns: &'a Namespace,
    next: Option<InodeId>,
}

impl Iterator for AncestorIter<'_> {
    type Item = InodeId;
    fn next(&mut self) -> Option<InodeId> {
        let cur = self.next?;
        self.next = self.ns.parent_raw(cur);
        Some(cur)
    }
}

/// Pre-order subtree iterator. See [`Namespace::walk`].
pub struct WalkIter<'a> {
    ns: &'a Namespace,
    stack: Vec<InodeId>,
}

impl Iterator for WalkIter<'_> {
    type Item = InodeId;
    fn next(&mut self) -> Option<InodeId> {
        let cur = self.stack.pop()?;
        if let Ok(kids) = self.ns.children(cur) {
            // Push in reverse name order so pop yields name order.
            let mut ids: Vec<InodeId> = kids.map(|(_, c)| c).collect();
            ids.reverse();
            self.stack.extend(ids);
        }
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perm() -> Permissions {
        Permissions::shared(1)
    }

    fn sample() -> (Namespace, InodeId, InodeId, InodeId) {
        // /home/alice/notes.txt
        let mut ns = Namespace::new();
        let home = ns.mkdir(ns.root(), "home", Permissions::directory(1)).unwrap();
        let alice = ns.mkdir(home, "alice", Permissions::directory(1)).unwrap();
        let notes = ns.create_file(alice, "notes.txt", perm()).unwrap();
        (ns, home, alice, notes)
    }

    #[test]
    fn fresh_namespace_has_only_root() {
        let ns = Namespace::new();
        assert_eq!(ns.total_items(), 1);
        assert_eq!(ns.num_dirs(), 1);
        assert_eq!(ns.num_files(), 0);
        assert_eq!(ns.path_of(ns.root()).unwrap(), "/");
        assert_eq!(ns.depth(ns.root()).unwrap(), 0);
    }

    #[test]
    fn create_and_lookup() {
        let (ns, home, alice, notes) = sample();
        assert_eq!(ns.lookup(ns.root(), "home").unwrap(), home);
        assert_eq!(ns.lookup(home, "alice").unwrap(), alice);
        assert_eq!(ns.lookup(alice, "notes.txt").unwrap(), notes);
        assert_eq!(ns.num_files(), 1);
        assert_eq!(ns.num_dirs(), 3);
    }

    #[test]
    fn paths_round_trip_through_resolve() {
        let (ns, _, alice, notes) = sample();
        assert_eq!(ns.path_of(notes).unwrap(), "/home/alice/notes.txt");
        assert_eq!(ns.resolve("/home/alice/notes.txt").unwrap(), notes);
        assert_eq!(ns.resolve("/home/alice").unwrap(), alice);
        assert_eq!(ns.resolve("/").unwrap(), ns.root());
        assert_eq!(ns.resolve("//home//alice/").unwrap(), alice);
    }

    #[test]
    fn duplicate_names_rejected() {
        let (mut ns, home, _, _) = sample();
        assert_eq!(ns.mkdir(home, "alice", perm()), Err(NamespaceError::AlreadyExists));
        assert_eq!(ns.create_file(home, "alice", perm()), Err(NamespaceError::AlreadyExists));
    }

    #[test]
    fn files_cannot_hold_children() {
        let (mut ns, _, _, notes) = sample();
        assert_eq!(ns.create_file(notes, "x", perm()), Err(NamespaceError::NotADirectory));
        assert_eq!(ns.lookup(notes, "x"), Err(NamespaceError::NotADirectory));
        assert!(ns.children(notes).is_err());
    }

    #[test]
    fn ancestors_walk_to_root() {
        let (ns, home, alice, notes) = sample();
        let ancs: Vec<InodeId> = ns.ancestors(notes).collect();
        assert_eq!(ancs, vec![alice, home, ns.root()]);
        assert_eq!(ns.depth(notes).unwrap(), 3);
        assert!(ns.is_ancestor(home, notes));
        assert!(!ns.is_ancestor(notes, home));
        assert!(!ns.is_ancestor(notes, notes), "not a strict ancestor of itself");
    }

    #[test]
    fn unlink_file_frees_it() {
        let (mut ns, _, alice, notes) = sample();
        assert_eq!(ns.unlink(alice, "notes.txt").unwrap(), notes);
        assert!(!ns.is_alive(notes));
        assert_eq!(ns.num_files(), 0);
        assert_eq!(ns.lookup(alice, "notes.txt"), Err(NamespaceError::NotFound));
        assert_eq!(ns.inode(notes), Err(NamespaceError::NotFound));
    }

    #[test]
    fn rmdir_requires_empty() {
        let (mut ns, home, _, _) = sample();
        assert_eq!(ns.unlink(home, "alice"), Err(NamespaceError::NotEmpty));
        let alice = ns.lookup(home, "alice").unwrap();
        ns.unlink(alice, "notes.txt").unwrap();
        ns.unlink(home, "alice").unwrap();
        assert_eq!(ns.num_dirs(), 2);
    }

    #[test]
    fn rename_moves_subtree() {
        let (mut ns, home, alice, notes) = sample();
        let bob = ns.mkdir(home, "bob", perm()).unwrap();
        ns.rename(home, "alice", bob, "alice2").unwrap();
        assert_eq!(ns.path_of(notes).unwrap(), "/home/bob/alice2/notes.txt");
        assert_eq!(ns.parent(alice).unwrap(), Some(bob));
        assert_eq!(ns.resolve("/home/bob/alice2/notes.txt").unwrap(), notes);
        assert_eq!(ns.resolve("/home/alice/notes.txt"), Err(NamespaceError::NotFound));
    }

    #[test]
    fn rename_within_directory_renames() {
        let (mut ns, _, alice, notes) = sample();
        ns.rename(alice, "notes.txt", alice, "todo.txt").unwrap();
        assert_eq!(ns.path_of(notes).unwrap(), "/home/alice/todo.txt");
    }

    #[test]
    fn rename_rejects_cycle() {
        let (mut ns, home, alice, _) = sample();
        let deep = ns.mkdir(alice, "deep", perm()).unwrap();
        assert_eq!(ns.rename(home, "alice", deep, "x"), Err(NamespaceError::InvalidMove));
        assert_eq!(ns.rename(home, "alice", alice, "x"), Err(NamespaceError::InvalidMove));
    }

    #[test]
    fn rename_rejects_clobber() {
        let (mut ns, home, _, _) = sample();
        ns.mkdir(home, "bob", perm()).unwrap();
        assert_eq!(ns.rename(home, "alice", home, "bob"), Err(NamespaceError::AlreadyExists));
    }

    #[test]
    fn rename_onto_itself_is_ok() {
        let (mut ns, home, alice, _) = sample();
        ns.rename(home, "alice", home, "alice").unwrap();
        assert_eq!(ns.parent(alice).unwrap(), Some(home));
    }

    #[test]
    fn hard_links_share_an_inode() {
        let (mut ns, home, alice, notes) = sample();
        ns.link(notes, home, "notes-link").unwrap();
        assert_eq!(ns.inode(notes).unwrap().nlink, 2);
        assert_eq!(ns.lookup(home, "notes-link").unwrap(), notes);
        // Primary path unchanged.
        assert_eq!(ns.path_of(notes).unwrap(), "/home/alice/notes.txt");
        // Dropping the secondary link keeps the inode alive.
        ns.unlink(home, "notes-link").unwrap();
        assert!(ns.is_alive(notes));
        assert_eq!(ns.inode(notes).unwrap().nlink, 1);
        // Dropping the last link kills it.
        ns.unlink(alice, "notes.txt").unwrap();
        assert!(!ns.is_alive(notes));
    }

    #[test]
    fn unlinking_primary_promotes_secondary() {
        let (mut ns, home, alice, notes) = sample();
        ns.link(notes, home, "notes-link").unwrap();
        ns.unlink(alice, "notes.txt").unwrap();
        assert!(ns.is_alive(notes));
        assert_eq!(ns.path_of(notes).unwrap(), "/home/notes-link");
        assert_eq!(ns.inode(notes).unwrap().nlink, 1);
    }

    #[test]
    fn directory_hard_links_rejected() {
        let (mut ns, home, alice, _) = sample();
        assert_eq!(ns.link(alice, home, "alias"), Err(NamespaceError::IsADirectory));
    }

    #[test]
    fn chmod_masks_mode() {
        let (mut ns, _, _, notes) = sample();
        ns.chmod(notes, 0o7777).unwrap();
        assert_eq!(ns.inode(notes).unwrap().perm.mode, 0o777);
    }

    #[test]
    fn check_access_walks_prefix() {
        let (mut ns, _, alice, notes) = sample();
        assert_eq!(ns.check_access(notes, 1).unwrap(), 3);
        // Lock alice's directory against others: uid 2 loses access.
        ns.update_inode(alice, |ino| ino.perm = Permissions { uid: 1, mode: 0o700 }).unwrap();
        assert_eq!(ns.check_access(notes, 1).unwrap(), 3);
        assert_eq!(ns.check_access(notes, 2), Err(NamespaceError::NotFound));
    }

    #[test]
    fn subtree_count_counts_inclusively() {
        let (ns, home, alice, _) = sample();
        assert_eq!(ns.subtree_count(alice).unwrap(), 2);
        assert_eq!(ns.subtree_count(home).unwrap(), 3);
        assert_eq!(ns.subtree_count(ns.root()).unwrap(), 4);
    }

    #[test]
    fn walk_is_preorder_name_ordered() {
        let (mut ns, home, _, _) = sample();
        ns.mkdir(home, "bob", perm()).unwrap();
        let order: Vec<String> = ns.walk(ns.root()).map(|id| ns.path_of(id).unwrap()).collect();
        assert_eq!(order, vec!["/", "/home", "/home/alice", "/home/alice/notes.txt", "/home/bob"]);
    }

    #[test]
    fn walk_of_dead_node_is_empty() {
        let (mut ns, _, alice, notes) = sample();
        ns.unlink(alice, "notes.txt").unwrap();
        assert_eq!(ns.walk(notes).count(), 0);
    }

    #[test]
    fn live_ids_skip_tombstones() {
        let (mut ns, _, alice, notes) = sample();
        ns.unlink(alice, "notes.txt").unwrap();
        assert!(!ns.live_ids().any(|id| id == notes));
        assert_eq!(ns.live_ids().count(), 3);
    }

    #[test]
    fn children_iterate_in_name_order() {
        let mut ns = Namespace::new();
        for name in ["zeta", "alpha", "mid"] {
            ns.create_file(ns.root(), name, perm()).unwrap();
        }
        let names: Vec<&str> = ns.children(ns.root()).unwrap().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn ids_are_never_reused() {
        let mut ns = Namespace::new();
        let a = ns.create_file(ns.root(), "a", perm()).unwrap();
        ns.unlink(ns.root(), "a").unwrap();
        let b = ns.create_file(ns.root(), "a", perm()).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn update_inode_writes_back_mutable_fields() {
        let (mut ns, _, _, notes) = sample();
        let r = ns
            .update_inode(notes, |ino| {
                ino.size = 1234;
                ino.mtime_us = 99;
                ino.perm = Permissions { uid: 7, mode: 0o640 };
                ino.size
            })
            .unwrap();
        assert_eq!(r, 1234);
        let ino = ns.inode(notes).unwrap();
        assert_eq!(ino.size, 1234);
        assert_eq!(ino.mtime_us, 99);
        assert_eq!(ino.perm, Permissions { uid: 7, mode: 0o640 });
        assert_eq!(ns.update_inode(InodeId(9999), |_| ()), Err(NamespaceError::NotFound));
    }

    #[test]
    fn name_syms_are_shared_and_resolvable() {
        let (mut ns, home, alice, notes) = sample();
        let other = ns.create_file(home, "notes.txt", perm()).unwrap();
        // Same name in different directories shares one symbol.
        assert_eq!(ns.name_sym(notes).unwrap(), ns.name_sym(other).unwrap());
        assert_eq!(ns.resolve_sym(ns.name_sym(notes).unwrap()), "notes.txt");
        assert_ne!(ns.name_sym(alice).unwrap(), ns.name_sym(notes).unwrap());
        // children_syms mirrors children, in the same order.
        let by_name: Vec<InodeId> = ns.children(home).unwrap().map(|(_, c)| c).collect();
        let by_sym: Vec<InodeId> = ns.children_syms(home).unwrap().map(|(_, c)| c).collect();
        assert_eq!(by_name, by_sym);
        let syms: Vec<&str> =
            ns.children_syms(home).unwrap().map(|(s, _)| ns.resolve_sym(s)).collect::<Vec<_>>();
        assert_eq!(syms, vec!["alice", "notes.txt"]);
    }

    #[test]
    fn visit_path_matches_path_of() {
        let (mut ns, home, alice, notes) = sample();
        for id in [ns.root(), home, alice, notes] {
            let mut joined = String::new();
            let n = ns
                .visit_path(id, |c| {
                    joined.push('/');
                    joined.push_str(c);
                })
                .unwrap();
            if n == 0 {
                joined.push('/');
            }
            assert_eq!(joined, ns.path_of(id).unwrap());
            assert_eq!(n, ns.depth(id).unwrap());
        }
        // Deep chain exercises the spill path past the inline buffer.
        let mut cur = alice;
        for d in 0..40 {
            cur = ns.mkdir(cur, &format!("deep{d:02}"), perm()).unwrap();
        }
        let mut joined = String::new();
        let n = ns
            .visit_path(cur, |c| {
                joined.push('/');
                joined.push_str(c);
            })
            .unwrap();
        assert_eq!(n, 42);
        assert_eq!(joined, ns.path_of(cur).unwrap());
        assert!(ns.visit_path(InodeId(99999), |_| ()).is_err());
    }

    #[test]
    fn heap_bytes_is_compact() {
        let mut ns = Namespace::new();
        for d in 0..100 {
            let dir = ns.mkdir(ns.root(), &format!("d{d:03}"), perm()).unwrap();
            for f in 0..20 {
                ns.create_file(dir, &format!("f{f:03}"), perm()).unwrap();
            }
        }
        let grown = ns.heap_bytes();
        ns.shrink_to_fit();
        let shrunk = ns.heap_bytes();
        assert!(shrunk <= grown);
        let per_inode = shrunk as f64 / ns.total_items() as f64;
        assert!(per_inode < 64.0, "expected ≤64 B/inode, got {per_inode:.1}");
        assert!(per_inode > 8.0, "accounting is not free: {per_inode:.1}");
    }
}

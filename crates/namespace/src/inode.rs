//! Inode records and permission bits.
//!
//! Inodes are deliberately small: the paper's data-distribution function
//! (§2.1.1) means the file→object mapping is "a few bytes", so a metadata
//! record is dominated by type, ownership, permissions and size. Fields the
//! simulator never branches on (timestamps beyond mtime, group bits beyond
//! the mode word) are omitted.

use crate::ids::InodeId;

/// Kind of a namespace entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FileType {
    /// Regular file.
    File,
    /// Directory (may contain entries with embedded inodes).
    Directory,
    /// Symbolic link; resolved client-side, opaque to the MDS cluster.
    Symlink,
}

impl FileType {
    /// Whether this entry may hold children.
    pub fn is_dir(self) -> bool {
        matches!(self, FileType::Directory)
    }
}

/// Simplified POSIX permission word: a uid plus a 9-bit rwx mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Permissions {
    /// Owning user.
    pub uid: u32,
    /// rwxrwxrwx bits (0o777 mask).
    pub mode: u16,
}

impl Permissions {
    /// Typical private-file permissions for `uid`.
    pub fn private(uid: u32) -> Self {
        Permissions { uid, mode: 0o600 }
    }

    /// Typical world-readable permissions for `uid`.
    pub fn shared(uid: u32) -> Self {
        Permissions { uid, mode: 0o644 }
    }

    /// Typical directory permissions for `uid`.
    pub fn directory(uid: u32) -> Self {
        Permissions { uid, mode: 0o755 }
    }

    /// Whether `uid` may traverse/read under these permissions. The check
    /// is the simplified POSIX rule the simulator needs: the owner uses the
    /// owner bits, everyone else the "other" bits.
    pub fn allows_read(&self, uid: u32) -> bool {
        if uid == self.uid {
            self.mode & 0o400 != 0
        } else {
            self.mode & 0o004 != 0
        }
    }

    /// Whether `uid` may execute/descend (for directories).
    pub fn allows_traverse(&self, uid: u32) -> bool {
        if uid == self.uid {
            self.mode & 0o100 != 0
        } else {
            self.mode & 0o001 != 0
        }
    }
}

/// A metadata record for one file, directory, or symlink.
///
/// `Copy` is deliberate: the namespace stores inode fields as columns and
/// materializes this record by value on access, so the type must be cheap
/// to pass around.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Inode {
    /// Unique identifier (never reused).
    pub id: InodeId,
    /// Entry kind.
    pub ftype: FileType,
    /// Ownership + mode.
    pub perm: Permissions,
    /// File size in bytes (directories report entry count via the tree).
    pub size: u64,
    /// Last-modification time, in simulator microseconds.
    pub mtime_us: u64,
    /// Hard-link count. Files with `nlink > 1` are the rare case that
    /// requires the anchor table (§4.5).
    pub nlink: u32,
}

impl Inode {
    /// Builds a fresh inode of the given type.
    pub fn new(id: InodeId, ftype: FileType, perm: Permissions) -> Self {
        Inode { id, ftype, perm, size: 0, mtime_us: 0, nlink: 1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_type_predicates() {
        assert!(FileType::Directory.is_dir());
        assert!(!FileType::File.is_dir());
        assert!(!FileType::Symlink.is_dir());
    }

    #[test]
    fn owner_read_permission() {
        let p = Permissions::private(42);
        assert!(p.allows_read(42));
        assert!(!p.allows_read(43));
    }

    #[test]
    fn shared_read_permission() {
        let p = Permissions::shared(42);
        assert!(p.allows_read(42));
        assert!(p.allows_read(43));
    }

    #[test]
    fn traverse_permission() {
        let d = Permissions::directory(1);
        assert!(d.allows_traverse(1));
        assert!(d.allows_traverse(2));
        let locked = Permissions { uid: 1, mode: 0o700 };
        assert!(locked.allows_traverse(1));
        assert!(!locked.allows_traverse(2));
    }

    #[test]
    fn new_inode_defaults() {
        let ino = Inode::new(InodeId(5), FileType::File, Permissions::shared(1));
        assert_eq!(ino.id, InodeId(5));
        assert_eq!(ino.size, 0);
        assert_eq!(ino.nlink, 1);
        assert_eq!(ino.mtime_us, 0);
    }
}

//! Hierarchical file-system namespace model.
//!
//! The SC'04 metadata study partitions a POSIX directory hierarchy across a
//! cluster of metadata servers. This crate is the shared model of that
//! hierarchy:
//!
//! * [`ids`] — strongly typed identifiers ([`InodeId`], [`MdsId`],
//!   [`ClientId`]) used across the workspace,
//! * [`inode`] — inode records, file types, and permission bits,
//! * [`tree`] — the [`Namespace`] arena tree with POSIX-shaped mutation
//!   operations (create, mkdir, rename, unlink, chmod, link),
//! * [`generate`] — a deterministic synthetic snapshot generator shaped
//!   like the paper's "large collection of home directories".
//!
//! The model stores inodes *embedded* in their containing directory — the
//! paper's §4.5 design — so a directory and its entries are a single unit
//! for storage, caching and prefetching purposes.

pub mod fx;
pub mod generate;
pub mod ids;
pub mod inode;
pub mod intern;
pub mod persist;
pub mod tree;

pub use fx::{FxBuildHasher, FxHashMap, FxHashSet};
pub use generate::{NamespaceSpec, Snapshot, SnapshotStats, StreamingGenerator};
pub use ids::{ClientId, InodeId, MdsId};
pub use inode::{FileType, Inode, Permissions};
pub use intern::Interner;
pub use persist::{ImportError, NamespaceImage, NodeImage};
pub use tree::{Namespace, NamespaceError};

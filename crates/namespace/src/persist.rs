//! Namespace snapshot persistence.
//!
//! The paper pairs workload traces with "matching file system metadata
//! snapshots" (§5.2, §7). [`NamespaceImage`] is a serde-serializable,
//! lossless image of a [`Namespace`] — including tombstoned ids (so inode
//! numbers survive round trips exactly, which traces depend on) and
//! secondary hard-link dentries.

use serde::{Deserialize, Serialize};

use crate::ids::InodeId;
use crate::inode::{FileType, Inode, Permissions};
use crate::tree::{Namespace, NamespaceError, NONE_U32};

/// One arena slot in the image; `None` is a tombstone.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeImage {
    /// Primary parent id (`None` for the root).
    pub parent: Option<u64>,
    /// Primary dentry name.
    pub name: String,
    /// Entry kind: 0 file, 1 directory, 2 symlink.
    pub ftype: u8,
    /// Owning uid.
    pub uid: u32,
    /// Mode bits.
    pub mode: u16,
    /// File size.
    pub size: u64,
    /// Modification time (simulator microseconds).
    pub mtime_us: u64,
    /// Hard-link count.
    pub nlink: u32,
}

/// A lossless, serializable image of a namespace.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NamespaceImage {
    /// Arena slots in id order; `None` marks a dead (tombstoned) id.
    pub slots: Vec<Option<NodeImage>>,
    /// Secondary hard-link dentries: `(dir, name, target)`.
    pub extra_links: Vec<(u64, String, u64)>,
}

/// Errors from importing an image.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ImportError {
    /// A slot references a parent outside the arena or a dead slot.
    BadParent,
    /// A parent slot is not a directory.
    ParentNotDir,
    /// Slot 0 must be the live root with no parent.
    BadRoot,
    /// A duplicate dentry name inside one directory.
    DuplicateName,
    /// An extra link references a missing slot.
    BadLink,
    /// An entry kind tag is unknown.
    BadKind,
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ImportError::BadParent => "bad parent reference",
            ImportError::ParentNotDir => "parent is not a directory",
            ImportError::BadRoot => "slot 0 is not a valid root",
            ImportError::DuplicateName => "duplicate dentry name",
            ImportError::BadLink => "bad hard-link reference",
            ImportError::BadKind => "unknown entry kind",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ImportError {}

impl Namespace {
    /// Exports a lossless image of this namespace.
    pub fn to_image(&self) -> NamespaceImage {
        let bound = self.id_bound() as usize;
        let mut slots = Vec::with_capacity(bound);
        let mut extra_links = Vec::new();
        for idx in 0..bound {
            let id = InodeId(idx as u64);
            let Ok(ino) = self.inode(id) else {
                slots.push(None);
                continue;
            };
            let ftype = match ino.ftype {
                FileType::File => 0u8,
                FileType::Directory => 1,
                FileType::Symlink => 2,
            };
            slots.push(Some(NodeImage {
                parent: self.parent(id).expect("live").map(|p| p.0),
                name: self.name(id).expect("live").to_string(),
                ftype,
                uid: ino.perm.uid,
                mode: ino.perm.mode,
                size: ino.size,
                mtime_us: ino.mtime_us,
                nlink: ino.nlink,
            }));
            // Secondary dentries: children entries whose primary home is
            // elsewhere.
            if let Ok(kids) = self.children_syms(id) {
                for (sym, child) in kids {
                    let c = child.index();
                    let primary = self.parent[c] == idx as u32 && self.name_sym[c] == sym;
                    if !primary {
                        extra_links.push((idx as u64, self.resolve_sym(sym).to_string(), child.0));
                    }
                }
            }
        }
        NamespaceImage { slots, extra_links }
    }

    /// Rebuilds a namespace from an image, preserving every inode id.
    pub fn from_image(image: &NamespaceImage) -> Result<Namespace, ImportError> {
        if image.slots.is_empty() {
            return Err(ImportError::BadRoot);
        }
        // Pass 1: allocate all slots.
        let mut ns = Namespace::raw_empty();
        let mut live_files = 0u64;
        let mut live_dirs = 0u64;
        for (idx, slot) in image.slots.iter().enumerate() {
            let id = InodeId(idx as u64);
            match slot {
                None => {
                    let tomb = Inode::new(id, FileType::File, Permissions { uid: 0, mode: 0 });
                    ns.push_slot(None, "", &tomb, false);
                }
                Some(img) => {
                    let ftype = match img.ftype {
                        0 => FileType::File,
                        1 => FileType::Directory,
                        2 => FileType::Symlink,
                        _ => return Err(ImportError::BadKind),
                    };
                    let mut inode =
                        Inode::new(id, ftype, Permissions { uid: img.uid, mode: img.mode });
                    inode.size = img.size;
                    inode.mtime_us = img.mtime_us;
                    inode.nlink = img.nlink;
                    if ftype.is_dir() {
                        live_dirs += 1;
                    } else {
                        live_files += 1;
                    }
                    // Parents beyond the arena are caught in pass 2 before
                    // the namespace can escape with a truncated column.
                    let parent = img.parent.filter(|&p| p < image.slots.len() as u64).map(InodeId);
                    ns.push_slot(parent, &img.name, &inode, true);
                }
            }
        }
        // Root checks.
        let root_ok = matches!(
            &image.slots[0],
            Some(img) if img.parent.is_none() && img.ftype == 1
        );
        if !root_ok {
            return Err(ImportError::BadRoot);
        }
        // Pass 2: primary dentries.
        for (idx, slot) in image.slots.iter().enumerate() {
            let Some(img) = slot else { continue };
            let Some(parent) = img.parent else { continue };
            let p = parent as usize;
            if p >= image.slots.len() || image.slots[p].is_none() {
                return Err(ImportError::BadParent);
            }
            let ti = ns.childtab[p];
            if ti == NONE_U32 {
                return Err(ImportError::ParentNotDir);
            }
            if !ns.dentry_insert(ti as usize, &img.name, idx as u32) {
                return Err(ImportError::DuplicateName);
            }
        }
        // Pass 3: secondary hard links.
        for (dir, name, target) in &image.extra_links {
            let d = *dir as usize;
            let t = *target as usize;
            if d >= image.slots.len()
                || t >= image.slots.len()
                || image.slots[t].is_none()
                || image.slots[d].is_none()
            {
                return Err(ImportError::BadLink);
            }
            let ti = ns.childtab[d];
            if ti == NONE_U32 {
                return Err(ImportError::ParentNotDir);
            }
            if !ns.dentry_insert(ti as usize, name, t as u32) {
                return Err(ImportError::DuplicateName);
            }
        }
        ns.root = InodeId(0);
        ns.live_files = live_files;
        ns.live_dirs = live_dirs;
        ns.move_epoch = 0;
        Ok(ns)
    }

    /// Structural self-check used after imports and in tests: parents are
    /// live directories, dentry maps agree with parent pointers, counters
    /// match.
    pub fn validate(&self) -> Result<(), NamespaceError> {
        let mut files = 0u64;
        let mut dirs = 0u64;
        for id in self.live_ids() {
            if self.is_dir(id) {
                dirs += 1;
            } else {
                files += 1;
            }
            if let Some(p) = self.parent(id)? {
                if !self.is_dir(p) {
                    return Err(NamespaceError::NotADirectory);
                }
                let name = self.name(id)?;
                if self.lookup(p, name)? != id {
                    return Err(NamespaceError::NotFound);
                }
            }
        }
        if files != self.num_files() || dirs != self.num_dirs() {
            return Err(NamespaceError::NotFound);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::NamespaceSpec;

    fn mutated_namespace() -> Namespace {
        let mut ns = NamespaceSpec { users: 6, seed: 21, ..Default::default() }.generate().ns;
        // Exercise tombstones, renames, links.
        let home = ns.resolve("/home/user0000").unwrap();
        let victim =
            ns.children(home).unwrap().find(|&(_, c)| !ns.is_dir(c)).map(|(n, _)| n.to_string());
        if let Some(name) = victim {
            ns.unlink(home, &name).unwrap();
        }
        let file = ns.walk(ns.root()).find(|&i| !ns.is_dir(i)).unwrap();
        ns.link(file, home, "hardlink").unwrap();
        let dir = ns.children(home).unwrap().find(|&(_, c)| ns.is_dir(c)).map(|(_, c)| c);
        if let Some(d) = dir {
            let parent = ns.parent(d).unwrap().unwrap();
            let name = ns.name(d).unwrap().to_string();
            ns.rename(parent, &name, ns.root(), "moved").unwrap();
        }
        ns
    }

    #[test]
    fn image_round_trip_is_lossless() {
        let ns = mutated_namespace();
        let image = ns.to_image();
        let back = Namespace::from_image(&image).expect("valid image");
        back.validate().expect("rebuilt tree is sound");

        assert_eq!(back.total_items(), ns.total_items());
        assert_eq!(back.num_files(), ns.num_files());
        assert_eq!(back.num_dirs(), ns.num_dirs());
        assert_eq!(back.id_bound(), ns.id_bound(), "ids preserved exactly");
        for id in ns.live_ids() {
            assert!(back.is_alive(id));
            assert_eq!(back.path_of(id).unwrap(), ns.path_of(id).unwrap());
            assert_eq!(back.inode(id).unwrap(), ns.inode(id).unwrap());
        }
        // And the image of the rebuild equals the original image.
        assert_eq!(back.to_image(), image);
    }

    #[test]
    fn hard_links_survive_round_trip() {
        let ns = mutated_namespace();
        let image = ns.to_image();
        assert!(!image.extra_links.is_empty(), "fixture has a hard link");
        let back = Namespace::from_image(&image).unwrap();
        let home = back.resolve("/home/user0000").unwrap();
        let linked = back.lookup(home, "hardlink").unwrap();
        assert!(back.inode(linked).unwrap().nlink >= 2);
    }

    #[test]
    fn tombstones_keep_ids_stable() {
        let ns = mutated_namespace();
        let image = ns.to_image();
        let dead: Vec<usize> =
            image.slots.iter().enumerate().filter(|(_, s)| s.is_none()).map(|(i, _)| i).collect();
        assert!(!dead.is_empty(), "fixture has tombstones");
        let back = Namespace::from_image(&image).unwrap();
        for idx in dead {
            assert!(!back.is_alive(InodeId(idx as u64)));
        }
    }

    #[test]
    fn corrupt_images_are_rejected() {
        let ns = mutated_namespace();
        let good = ns.to_image();
        let err_of = |img: &NamespaceImage| Namespace::from_image(img).err();

        let mut bad = good.clone();
        bad.slots[0] = None;
        assert_eq!(err_of(&bad), Some(ImportError::BadRoot));

        let mut bad = good.clone();
        let slot = bad
            .slots
            .iter_mut()
            .filter_map(|s| s.as_mut())
            .find(|n| n.parent.is_some())
            .expect("a non-root slot exists");
        slot.parent = Some(999_999);
        assert_eq!(err_of(&bad), Some(ImportError::BadParent));

        let mut bad = good.clone();
        bad.extra_links.push((0, "x".into(), 999_999));
        assert_eq!(err_of(&bad), Some(ImportError::BadLink));

        let mut bad = good.clone();
        bad.slots.iter_mut().filter_map(|s| s.as_mut()).next().expect("a live slot exists").ftype =
            9;
        assert_eq!(err_of(&bad), Some(ImportError::BadKind));

        assert_eq!(err_of(&NamespaceImage::default()), Some(ImportError::BadRoot));
    }

    #[test]
    fn validate_accepts_generated_trees() {
        for seed in 0..5 {
            let snap = NamespaceSpec { users: 4, seed, ..Default::default() }.generate();
            snap.ns.validate().expect("generated trees are sound");
        }
    }
}

//! Path-component interner: one `u32` symbol per distinct name.
//!
//! At the scale tier (10⁸-inode-class namespaces, ROADMAP item 1) the
//! dominant memory cost of the old arena tree was per-node heap strings:
//! a `Box<str>` burns 16 bytes of pointer+len plus a separate allocation
//! per node, even though real namespaces reuse a tiny vocabulary of
//! component names (`d003`, `f012_004`, `user0419`, ...). The interner
//! collapses every occurrence of a name to a dense `u32` symbol backed by
//! a single append-only byte arena, so the struct-of-arrays
//! [`Namespace`](crate::Namespace) stores 4 bytes per dentry name and the
//! vocabulary is paid for once.
//!
//! Symbols are assigned in first-intern order and never freed — interning
//! is monotone, which keeps symbols valid across unlink/rename and makes
//! symbol comparison stable for the lifetime of the namespace. Ordering
//! of *names* is still byte-lexicographic via [`resolve`](Interner::resolve);
//! symbols themselves carry no order.

use crate::fx::FxHashMap;

/// Append-only string interner mapping names to dense `u32` symbols.
///
/// Lookup is by 64-bit FNV-1a of the name. Distinct names colliding on
/// the full 64-bit hash are astronomically rare for path components, but
/// correctness cannot hinge on that: the map holds the *first* symbol for
/// each hash and `overflow` holds any later symbols whose names hashed
/// identically; probes verify bytes and fall through to a linear scan of
/// the (normally empty) overflow list.
pub struct Interner {
    /// Concatenated bytes of every interned name, in symbol order.
    arena: String,
    /// `(offset, len)` into `arena` per symbol.
    spans: Vec<(u32, u32)>,
    /// fnv64(name) → first symbol with that hash.
    map: FxHashMap<u64, u32>,
    /// Symbols whose name hash collided with an earlier distinct name.
    overflow: Vec<u32>,
}

/// 64-bit FNV-1a over the raw bytes of a name.
#[inline]
fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner {
            arena: String::new(),
            spans: Vec::new(),
            map: FxHashMap::default(),
            overflow: Vec::new(),
        }
    }

    /// Returns the symbol for `name`, assigning the next dense symbol on
    /// first sight. Identical names always return identical symbols.
    pub fn intern(&mut self, name: &str) -> u32 {
        let h = fnv64(name);
        if let Some(&sym) = self.map.get(&h) {
            if self.resolve(sym) == name {
                return sym;
            }
            // 64-bit hash collision between distinct names: check the
            // overflow list before minting a new symbol.
            for &sym in &self.overflow {
                if self.resolve(sym) == name {
                    return sym;
                }
            }
            let sym = self.push(name);
            self.overflow.push(sym);
            return sym;
        }
        let sym = self.push(name);
        self.map.insert(h, sym);
        sym
    }

    /// Returns the symbol for `name` if it has been interned, without
    /// assigning one.
    pub fn get(&self, name: &str) -> Option<u32> {
        let h = fnv64(name);
        let &sym = self.map.get(&h)?;
        if self.resolve(sym) == name {
            return Some(sym);
        }
        self.overflow.iter().copied().find(|&s| self.resolve(s) == name)
    }

    fn push(&mut self, name: &str) -> u32 {
        let sym = u32::try_from(self.spans.len()).expect("interner symbol space exhausted");
        let off = u32::try_from(self.arena.len()).expect("interner arena exceeds 4 GiB");
        let len = u32::try_from(name.len()).expect("name longer than u32");
        self.arena.push_str(name);
        self.spans.push((off, len));
        sym
    }

    /// The name behind `sym`. Panics on an out-of-range symbol.
    #[inline]
    pub fn resolve(&self, sym: u32) -> &str {
        let (off, len) = self.spans[sym as usize];
        &self.arena[off as usize..(off + len) as usize]
    }

    /// Number of distinct names interned.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no names have been interned.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Heap bytes held: arena, span table, hash map, overflow list.
    /// Counts capacities (what the allocator actually handed out), not
    /// lengths, so it matches RSS-facing accounting.
    pub fn heap_bytes(&self) -> usize {
        self.arena.capacity()
            + self.spans.capacity() * std::mem::size_of::<(u32, u32)>()
            + self.map.capacity() * std::mem::size_of::<(u64, u32)>()
            + self.overflow.capacity() * std::mem::size_of::<u32>()
    }
}

impl Default for Interner {
    fn default() -> Self {
        Interner::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_resolves_original_names() {
        let mut it = Interner::new();
        let names = ["", "home", "user0001", "f012_004", "a-very-long-component-name"];
        let syms: Vec<u32> = names.iter().map(|n| it.intern(n)).collect();
        for (name, &sym) in names.iter().zip(&syms) {
            assert_eq!(it.resolve(sym), *name);
        }
        assert_eq!(it.len(), names.len());
    }

    #[test]
    fn identical_names_share_a_symbol() {
        let mut it = Interner::new();
        let a = it.intern("notes.txt");
        let b = it.intern("other");
        let c = it.intern("notes.txt");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn symbols_are_dense_and_first_come() {
        let mut it = Interner::new();
        assert_eq!(it.intern("x"), 0);
        assert_eq!(it.intern("y"), 1);
        assert_eq!(it.intern("x"), 0);
        assert_eq!(it.intern("z"), 2);
    }

    #[test]
    fn get_does_not_mint_symbols() {
        let mut it = Interner::new();
        assert_eq!(it.get("missing"), None);
        let s = it.intern("present");
        assert_eq!(it.get("present"), Some(s));
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn many_distinct_names_stay_unique() {
        let mut it = Interner::new();
        let syms: Vec<u32> = (0..10_000).map(|i| it.intern(&format!("n{i:05}"))).collect();
        let set: std::collections::HashSet<u32> = syms.iter().copied().collect();
        assert_eq!(set.len(), 10_000, "distinct names must get distinct symbols");
        for (i, &sym) in syms.iter().enumerate() {
            assert_eq!(it.resolve(sym), format!("n{i:05}"));
        }
    }

    #[test]
    fn heap_bytes_grows_with_content() {
        let mut it = Interner::new();
        let empty = it.heap_bytes();
        for i in 0..1000 {
            it.intern(&format!("component-{i}"));
        }
        assert!(it.heap_bytes() > empty);
        // Sanity: well under a kilobyte per short name.
        assert!(it.heap_bytes() < 1000 * 1024);
    }
}

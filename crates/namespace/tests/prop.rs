//! Property tests: the namespace tree stays structurally sound under
//! arbitrary interleavings of mutation operations.

use dynmds_namespace::{InodeId, Namespace, NamespaceSpec, Permissions};
use proptest::prelude::*;

/// One randomized mutation. Indices are resolved modulo the live-id set at
/// application time, so every generated program is applicable to any tree.
#[derive(Clone, Debug)]
enum Op {
    Mkdir { parent: usize, name: u8 },
    Create { parent: usize, name: u8 },
    Unlink { dir: usize, child: usize },
    Rename { src_dir: usize, child: usize, dst_dir: usize, name: u8 },
    Chmod { target: usize, mode: u16 },
    Link { target: usize, dir: usize, name: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<usize>(), any::<u8>()).prop_map(|(parent, name)| Op::Mkdir { parent, name }),
        (any::<usize>(), any::<u8>()).prop_map(|(parent, name)| Op::Create { parent, name }),
        (any::<usize>(), any::<usize>()).prop_map(|(dir, child)| Op::Unlink { dir, child }),
        (any::<usize>(), any::<usize>(), any::<usize>(), any::<u8>()).prop_map(
            |(src_dir, child, dst_dir, name)| Op::Rename { src_dir, child, dst_dir, name }
        ),
        (any::<usize>(), any::<u16>()).prop_map(|(target, mode)| Op::Chmod { target, mode }),
        (any::<usize>(), any::<usize>(), any::<u8>()).prop_map(|(target, dir, name)| Op::Link {
            target,
            dir,
            name
        }),
    ]
}

fn live_dirs(ns: &Namespace) -> Vec<InodeId> {
    ns.live_ids().filter(|&id| ns.is_dir(id)).collect()
}

fn live_all(ns: &Namespace) -> Vec<InodeId> {
    ns.live_ids().collect()
}

fn apply(ns: &mut Namespace, op: &Op) {
    let dirs = live_dirs(ns);
    let all = live_all(ns);
    let pick = |v: &[InodeId], i: usize| v[i % v.len()];
    match *op {
        Op::Mkdir { parent, name } => {
            let p = pick(&dirs, parent);
            let _ = ns.mkdir(p, &format!("m{name}"), Permissions::directory(1));
        }
        Op::Create { parent, name } => {
            let p = pick(&dirs, parent);
            let _ = ns.create_file(p, &format!("c{name}"), Permissions::shared(1));
        }
        Op::Unlink { dir, child } => {
            let d = pick(&dirs, dir);
            let names: Vec<String> = match ns.children(d) {
                Ok(it) => it.map(|(n, _)| n.to_string()).collect(),
                Err(_) => return,
            };
            if names.is_empty() {
                return;
            }
            let name = &names[child % names.len()];
            let _ = ns.unlink(d, name);
        }
        Op::Rename { src_dir, child, dst_dir, name } => {
            let s = pick(&dirs, src_dir);
            let t = pick(&dirs, dst_dir);
            let names: Vec<String> = match ns.children(s) {
                Ok(it) => it.map(|(n, _)| n.to_string()).collect(),
                Err(_) => return,
            };
            if names.is_empty() {
                return;
            }
            let old = &names[child % names.len()];
            let _ = ns.rename(s, old, t, &format!("r{name}"));
        }
        Op::Chmod { target, mode } => {
            let t = pick(&all, target);
            let _ = ns.chmod(t, mode);
        }
        Op::Link { target, dir, name } => {
            let t = pick(&all, target);
            let d = pick(&dirs, dir);
            let _ = ns.link(t, d, &format!("l{name}"));
        }
    }
}

/// Invariants every reachable tree state must satisfy.
fn check_invariants(ns: &Namespace) {
    let live: Vec<InodeId> = ns.live_ids().collect();

    // 1. Every live id's primary path resolves back to it.
    for &id in &live {
        let path = ns.path_of(id).expect("live node has a path");
        let back = ns.resolve(&path).expect("path resolves");
        assert_eq!(back, id, "path {path} resolved elsewhere");
    }

    // 2. The walk from the root visits every live directory-reachable node
    //    exactly once (acyclicity + reachability). Hard links mean files
    //    can be visited more than once via extra dentries, so compare on
    //    the dedup'd set.
    let mut visited: Vec<InodeId> = ns.walk(ns.root()).collect();
    visited.sort();
    visited.dedup();
    let mut expected = live.clone();
    expected.sort();
    assert_eq!(visited, expected, "walk must cover exactly the live set");

    // 3. Counts agree.
    let files = live.iter().filter(|&&id| !ns.is_dir(id)).count() as u64;
    let dirs = live.iter().filter(|&&id| ns.is_dir(id)).count() as u64;
    assert_eq!(files, ns.num_files());
    assert_eq!(dirs, ns.num_dirs());

    // 4. Ancestor chains terminate at the root (no cycles).
    for &id in &live {
        let chain: Vec<InodeId> = ns.ancestors(id).collect();
        if id != ns.root() {
            assert_eq!(chain.last().copied(), Some(ns.root()));
        }
        let mut dedup = chain.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), chain.len(), "cycle in ancestor chain of {id}");
    }

    // 5. Depth equals ancestor count.
    for &id in &live {
        assert_eq!(ns.depth(id).unwrap(), ns.ancestors(id).count());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_programs_preserve_tree_invariants(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut ns = Namespace::new();
        for op in &ops {
            apply(&mut ns, op);
        }
        check_invariants(&ns);
    }

    #[test]
    fn random_programs_on_generated_snapshot(ops in prop::collection::vec(op_strategy(), 1..60), seed in 0u64..1000) {
        let snap = NamespaceSpec { users: 5, mean_dirs_per_user: 4.0, seed, ..Default::default() }.generate();
        let mut ns = snap.ns;
        for op in &ops {
            apply(&mut ns, op);
        }
        check_invariants(&ns);
    }

    #[test]
    fn subtree_counts_match_walk(seed in 0u64..500) {
        let snap = NamespaceSpec { users: 3, mean_dirs_per_user: 5.0, seed, ..Default::default() }.generate();
        let ns = snap.ns;
        for id in ns.live_ids().filter(|&i| ns.is_dir(i)) {
            let by_count = ns.subtree_count(id).unwrap();
            // walk() follows dentries; under hard links it may repeat file
            // ids, but generated snapshots have none, so these agree.
            let by_walk = ns.walk(id).count() as u64;
            prop_assert_eq!(by_count, by_walk);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Persistence: any reachable tree state survives an image round trip
    /// losslessly.
    #[test]
    fn image_round_trip_after_random_programs(
        ops in prop::collection::vec(op_strategy(), 1..80),
        seed in 0u64..200,
    ) {
        let snap = NamespaceSpec { users: 4, mean_dirs_per_user: 4.0, seed, ..Default::default() }.generate();
        let mut ns = snap.ns;
        for op in &ops {
            apply(&mut ns, op);
        }
        let image = ns.to_image();
        let back = Namespace::from_image(&image).expect("own images are valid");
        back.validate().expect("rebuilt tree is sound");
        prop_assert_eq!(back.total_items(), ns.total_items());
        prop_assert_eq!(back.id_bound(), ns.id_bound());
        for id in ns.live_ids() {
            prop_assert_eq!(back.path_of(id).unwrap(), ns.path_of(id).unwrap());
            prop_assert_eq!(back.inode(id).unwrap(), ns.inode(id).unwrap());
        }
        prop_assert_eq!(back.to_image(), image, "fixed point after one trip");
    }
}

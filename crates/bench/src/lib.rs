//! Shared miniature-simulation builders for the per-figure Criterion
//! benches.
//!
//! Each bench regenerates a scaled-down slice of its figure per iteration:
//! the bench time tracks the cost of the simulation that produces the
//! figure's data, and the returned numbers let the benches assert the
//! figure's qualitative shape as a sanity check (a bench that silently
//! measured a broken simulation would be worthless).

use dynmds_core::{SimConfig, SimReport, Simulation};
use dynmds_event::{SimDuration, SimTime};
use dynmds_namespace::{NamespaceSpec, Snapshot};
use dynmds_partition::StrategyKind;
use dynmds_workload::{FlashCrowd, GeneralWorkload, WorkloadConfig};

/// A small steady-state run of one strategy: 4 servers, 24 clients, ~6k
/// items, 4 virtual seconds (1 warm-up + 3 measured).
pub fn mini_steady(strategy: StrategyKind, cache_capacity: usize) -> SimReport {
    let mut cfg = SimConfig::small(strategy);
    cfg.n_mds = 4;
    cfg.n_clients = 24;
    cfg.cache_capacity = cache_capacity;
    cfg.journal_capacity = cache_capacity;
    cfg.seed = 17;
    let snap = mini_snapshot(cfg.seed);
    let wl = Box::new(GeneralWorkload::new(
        WorkloadConfig { seed: 23, ..Default::default() },
        cfg.n_clients as usize,
        &snap.user_homes,
        &snap.shared_roots,
        &snap.ns,
    ));
    let sim = Simulation::new(cfg, snap, wl);
    sim.run_measured(SimDuration::from_secs(1), SimDuration::from_secs(3))
}

/// The snapshot shared by the miniature runs.
pub fn mini_snapshot(seed: u64) -> Snapshot {
    NamespaceSpec::with_target_items(24, 6_000, seed).generate()
}

/// A small flash-crowd run, traffic control configurable.
pub fn mini_flash(traffic_control: bool) -> SimReport {
    let mut cfg = SimConfig::small(StrategyKind::DynamicSubtree);
    cfg.n_mds = 4;
    cfg.n_clients = 200;
    cfg.cache_capacity = 2_000;
    cfg.traffic_control = traffic_control;
    cfg.replication_threshold = 32.0;
    cfg.balancing = false;
    cfg.costs.think_mean = SimDuration::from_millis(20);
    cfg.seed = 29;
    let snap = NamespaceSpec { users: 8, seed: 31, ..Default::default() }.generate();
    let target =
        snap.ns.walk(snap.shared_roots[0]).find(|&id| !snap.ns.is_dir(id)).expect("file exists");
    let wl = Box::new(FlashCrowd::new(target, cfg.n_clients as usize));
    let mut sim = Simulation::with_start(
        cfg,
        snap,
        wl,
        SimTime::from_millis(50),
        SimDuration::from_millis(100),
    );
    sim.run_until(SimTime::from_millis(800));
    sim.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mini_steady_produces_work() {
        let r = mini_steady(StrategyKind::DynamicSubtree, 600);
        assert!(r.total_served() > 500);
    }

    #[test]
    fn mini_flash_produces_work() {
        let r = mini_flash(true);
        assert!(r.total_served() > 100);
    }
}

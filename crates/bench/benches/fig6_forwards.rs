//! Figure 6 bench: forwarded-request accounting under client route
//! discovery (a cold-start run where forwarding is the dominant signal).

use criterion::{criterion_group, criterion_main, Criterion};
use dynmds_core::{SimConfig, Simulation};
use dynmds_event::SimTime;
use dynmds_namespace::NamespaceSpec;
use dynmds_partition::StrategyKind;
use dynmds_workload::{GeneralWorkload, WorkloadConfig};

fn cold_forwards(strategy: StrategyKind) -> (u64, u64) {
    let mut cfg = SimConfig::small(strategy);
    cfg.n_mds = 4;
    cfg.n_clients = 24;
    cfg.seed = 6;
    let snap = NamespaceSpec::with_target_items(24, 6_000, 6).generate();
    let wl = Box::new(GeneralWorkload::new(
        WorkloadConfig { seed: 66, ..Default::default() },
        24,
        &snap.user_homes,
        &snap.shared_roots,
        &snap.ns,
    ));
    let mut sim = Simulation::new(cfg, snap, wl);
    sim.run_until(SimTime::from_secs(4));
    let r = sim.finish();
    (r.total_forwarded(), r.total_received())
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_forwards");
    g.sample_size(10);
    g.bench_function("static_discovery", |b| {
        b.iter(|| {
            let (fwd, recv) = cold_forwards(StrategyKind::StaticSubtree);
            assert!(fwd > 0, "cold clients must forward");
            assert!(fwd * 2 < recv, "learning must contain forwarding");
            fwd
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);

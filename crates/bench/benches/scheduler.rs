//! Scheduler microbenchmark: the timer-wheel [`EventQueue`] against the
//! reference binary-heap scheduler ([`HeapEventQueue`]) on the mixed
//! schedule / pop / cancel cycle the simulation hot loop imposes, at
//! three steady-state populations (1k, 100k, 1M pending events). The
//! heap's pop cost grows with log(pending); the wheel's stays flat, so
//! the gap should widen with population.
//!
//! Deltas come from a table precomputed outside the timed region so RNG
//! cost never pollutes the comparison. Every 16th iteration schedules an
//! extra event and cancels it, exercising the tombstone path both queues
//! implement.

use criterion::{criterion_group, criterion_main, Criterion};
use dynmds_event::{
    EventId, EventQueue, HeapEventQueue, ScheduledEvent, SimDuration, SimRng, SimTime,
};

const DELTA_MASK: usize = 8191;

fn delta_table() -> Vec<u64> {
    let mut rng = SimRng::seed_from_u64(0xD1CE);
    (0..=DELTA_MASK).map(|_| 1 + rng.below(1 << 16)).collect()
}

/// The scheduler surface both queues share, so one driver exercises both.
trait Sched {
    fn schedule(&mut self, at: SimTime, v: u64) -> EventId;
    fn pop(&mut self) -> Option<ScheduledEvent<u64>>;
    fn cancel(&mut self, id: EventId) -> bool;
}

impl Sched for EventQueue<u64> {
    fn schedule(&mut self, at: SimTime, v: u64) -> EventId {
        EventQueue::schedule(self, at, v)
    }
    fn pop(&mut self) -> Option<ScheduledEvent<u64>> {
        EventQueue::pop(self)
    }
    fn cancel(&mut self, id: EventId) -> bool {
        EventQueue::cancel(self, id)
    }
}

impl Sched for HeapEventQueue<u64> {
    fn schedule(&mut self, at: SimTime, v: u64) -> EventId {
        HeapEventQueue::schedule(self, at, v)
    }
    fn pop(&mut self) -> Option<ScheduledEvent<u64>> {
        HeapEventQueue::pop(self)
    }
    fn cancel(&mut self, id: EventId) -> bool {
        HeapEventQueue::cancel(self, id)
    }
}

fn prefill<Q: Sched>(q: &mut Q, pending: usize, deltas: &[u64]) {
    for i in 0..pending {
        q.schedule(SimTime::from_micros(deltas[i & DELTA_MASK] * (i as u64 % 7 + 1)), i as u64);
    }
}

/// One mixed step: pop the earliest event and reschedule it one delta
/// ahead (the steady-state cycle); every 16th step also schedule an
/// extra event and cancel it.
fn step<Q: Sched>(q: &mut Q, deltas: &[u64], i: &mut usize) -> SimTime {
    let ev = q.pop().expect("population is steady, queue never drains");
    let at = ev.at + SimDuration::from_micros(deltas[*i & DELTA_MASK]);
    q.schedule(at, ev.event);
    if *i & 15 == 0 {
        let id = q.schedule(at + SimDuration::from_micros(1), u64::MAX);
        assert!(q.cancel(id));
    }
    *i += 1;
    ev.at
}

fn bench_scheduler(c: &mut Criterion) {
    let deltas = delta_table();
    let mut g = c.benchmark_group("scheduler");
    for pending in [1_000usize, 100_000, 1_000_000] {
        let label = match pending {
            1_000 => "1k",
            100_000 => "100k",
            _ => "1m",
        };
        g.bench_function(format!("wheel_{label}_pending"), |b| {
            let mut q: EventQueue<u64> = EventQueue::with_delta_hint(SimDuration::from_millis(1));
            prefill(&mut q, pending, &deltas);
            let mut i = 0usize;
            b.iter(|| step(&mut q, &deltas, &mut i))
        });
        g.bench_function(format!("heap_{label}_pending"), |b| {
            let mut q: HeapEventQueue<u64> = HeapEventQueue::new();
            prefill(&mut q, pending, &deltas);
            let mut i = 0usize;
            b.iter(|| step(&mut q, &deltas, &mut i))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);

//! Scheduler microbenchmark: the timer-wheel [`EventQueue`] against the
//! reference binary-heap scheduler ([`HeapEventQueue`]) on the mixed
//! schedule / pop / cancel cycle the simulation hot loop imposes, at
//! three steady-state populations (1k, 100k, 1M pending events). The
//! heap's pop cost grows with log(pending); the wheel's stays flat, so
//! the gap should widen with population.
//!
//! Deltas come from a table precomputed outside the timed region so RNG
//! cost never pollutes the comparison. Every 16th iteration schedules an
//! extra event and cancels it, exercising the tombstone path both queues
//! implement.

use criterion::{criterion_group, criterion_main, Criterion};
use dynmds_event::{
    EventId, EventQueue, HeapEventQueue, ScheduledEvent, SimDuration, SimRng, SimTime,
};

const DELTA_MASK: usize = 8191;

fn delta_table() -> Vec<u64> {
    let mut rng = SimRng::seed_from_u64(0xD1CE);
    (0..=DELTA_MASK).map(|_| 1 + rng.below(1 << 16)).collect()
}

/// The scheduler surface both queues share, so one driver exercises both.
trait Sched {
    fn schedule(&mut self, at: SimTime, v: u64) -> EventId;
    fn pop(&mut self) -> Option<ScheduledEvent<u64>>;
    fn cancel(&mut self, id: EventId) -> bool;
}

impl Sched for EventQueue<u64> {
    fn schedule(&mut self, at: SimTime, v: u64) -> EventId {
        EventQueue::schedule(self, at, v)
    }
    fn pop(&mut self) -> Option<ScheduledEvent<u64>> {
        EventQueue::pop(self)
    }
    fn cancel(&mut self, id: EventId) -> bool {
        EventQueue::cancel(self, id)
    }
}

impl Sched for HeapEventQueue<u64> {
    fn schedule(&mut self, at: SimTime, v: u64) -> EventId {
        HeapEventQueue::schedule(self, at, v)
    }
    fn pop(&mut self) -> Option<ScheduledEvent<u64>> {
        HeapEventQueue::pop(self)
    }
    fn cancel(&mut self, id: EventId) -> bool {
        HeapEventQueue::cancel(self, id)
    }
}

fn prefill<Q: Sched>(q: &mut Q, pending: usize, deltas: &[u64]) {
    for i in 0..pending {
        q.schedule(SimTime::from_micros(deltas[i & DELTA_MASK] * (i as u64 % 7 + 1)), i as u64);
    }
}

/// One mixed step: pop the earliest event and reschedule it one delta
/// ahead (the steady-state cycle); every 16th step also schedule an
/// extra event and cancel it.
fn step<Q: Sched>(q: &mut Q, deltas: &[u64], i: &mut usize) -> SimTime {
    let ev = q.pop().expect("population is steady, queue never drains");
    let at = ev.at + SimDuration::from_micros(deltas[*i & DELTA_MASK]);
    q.schedule(at, ev.event);
    if *i & 15 == 0 {
        let id = q.schedule(at + SimDuration::from_micros(1), u64::MAX);
        assert!(q.cancel(id));
    }
    *i += 1;
    ev.at
}

/// Sparse-schedule deltas: inter-event gaps past the level-0 page (1024
/// µs at the simulation's delta hint), the DST torture regime where the
/// wheel used to cursor-walk empty pages and lost ~5% to the heap.
fn sparse_delta_table() -> Vec<u64> {
    let mut rng = SimRng::seed_from_u64(0x5AB5);
    (0..=DELTA_MASK).map(|_| 2_048 + rng.below(1 << 16)).collect()
}

const SPARSE_PENDING: usize = 48;

/// Pins the sparse fast path: with gaps beyond the level-0 page and a
/// small population, the wheel must stay within 15% of the heap's
/// throughput (it used to trail by ~5% and the heap's log(48) pops are
/// cheap — without the single-occupant-bucket pop the wheel pays a
/// settle/cascade round trip per event and fails this bound). Medians
/// over several interleaved runs keep the check stable on noisy CI.
fn assert_sparse_fast_path(deltas: &[u64]) {
    let run = |f: &mut dyn FnMut() -> SimTime| {
        let start = std::time::Instant::now();
        let mut last = SimTime::ZERO;
        for _ in 0..200_000 {
            last = f();
        }
        (start.elapsed(), last)
    };
    let mut wheel_times = Vec::new();
    let mut heap_times = Vec::new();
    for _ in 0..5 {
        let mut q: EventQueue<u64> = EventQueue::with_delta_hint(SimDuration::from_millis(1));
        prefill(&mut q, SPARSE_PENDING, deltas);
        let mut i = 0usize;
        wheel_times.push(run(&mut || step(&mut q, deltas, &mut i)).0);

        let mut q: HeapEventQueue<u64> = HeapEventQueue::new();
        prefill(&mut q, SPARSE_PENDING, deltas);
        let mut i = 0usize;
        heap_times.push(run(&mut || step(&mut q, deltas, &mut i)).0);
    }
    wheel_times.sort();
    heap_times.sort();
    let (wheel, heap) = (wheel_times[2], heap_times[2]);
    let ratio = heap.as_secs_f64() / wheel.as_secs_f64();
    println!(
        "sparse fast path: wheel {:.1?} vs heap {:.1?} per 200k steps (wheel/heap speed {ratio:.2}x)",
        wheel, heap
    );
    assert!(
        ratio >= 0.85,
        "sparse-schedule regression: wheel {wheel:?} vs heap {heap:?} ({ratio:.2}x, need >= 0.85x)"
    );
}

/// Inter-event gap of the skip race: two orders of magnitude past the
/// 100 µs conservative window, the regime where the sharded engine's
/// idle-window skip does all the work and `next_event_time()` is the
/// per-barrier probe deciding how far to jump.
const RACE_GAP_US: u64 = 10_000;

/// Correctness pin for the skip probe under lazy cancellation: with a
/// sparse 10 ms schedule and the head event tombstoned, `next_event_time`
/// must report the first *live* event — never the cancelled head's time
/// (which would make the engine under-skip into an empty window).
fn assert_skip_probe_sees_past_tombstones() {
    let mut q: EventQueue<u64> = EventQueue::with_delta_hint(SimDuration::from_micros(250));
    let mut rng = SimRng::seed_from_u64(0x51CF);
    let mut at = SimTime::ZERO;
    let mut live = Vec::new();
    for i in 0..64u64 {
        at += SimDuration::from_micros(RACE_GAP_US + rng.below(RACE_GAP_US));
        let id = q.schedule(at, i);
        if rng.below(3) == 0 {
            assert!(q.cancel(id));
        } else {
            live.push(at);
        }
    }
    for want in live {
        assert_eq!(q.next_event_time(), Some(want), "skip probe disagrees with pop order");
        let ev = q.pop().expect("live event");
        assert_eq!(ev.at, want);
    }
    assert_eq!(q.next_event_time(), None, "drained queue must report no next event");
}

fn bench_scheduler(c: &mut Criterion) {
    let deltas = delta_table();
    let sparse = sparse_delta_table();
    assert_sparse_fast_path(&sparse);
    assert_skip_probe_sees_past_tombstones();
    let mut g = c.benchmark_group("scheduler");
    // The skip race: a handful of events 10 ms apart, each step probing
    // next_event_time (the barrier's skip decision) before the pop —
    // the steady-state shape of a sparse diurnal night.
    g.bench_function("wheel_skip_race_10ms_gap", |b| {
        let mut q: EventQueue<u64> = EventQueue::with_delta_hint(SimDuration::from_micros(250));
        for i in 0..8u64 {
            q.schedule(SimTime::from_micros(1 + i * RACE_GAP_US), i);
        }
        b.iter(|| {
            let t = q.next_event_time().expect("steady population");
            let ev = q.pop_due(t).expect("probe reported a due event");
            q.schedule(t + SimDuration::from_micros(8 * RACE_GAP_US), ev);
            t
        })
    });
    // Same race with a tombstone planted at the head each step: the
    // probe must take the slow scan past the cancelled entry.
    g.bench_function("wheel_skip_race_tombstone_head", |b| {
        let mut q: EventQueue<u64> = EventQueue::with_delta_hint(SimDuration::from_micros(250));
        for i in 0..8u64 {
            q.schedule(SimTime::from_micros(1 + i * RACE_GAP_US), i);
        }
        b.iter(|| {
            let head = q.next_event_time().expect("steady population");
            let id = q.schedule(SimTime::from_micros(head.as_micros() - 1), u64::MAX);
            assert!(q.cancel(id));
            let t = q.next_event_time().expect("steady population");
            // pop() (not pop_due) so the physically-first tombstone is
            // reaped on the way to the live head the probe reported.
            let ev = q.pop().expect("probe reported a live event");
            assert_eq!(ev.at, t, "probe must agree with the popped head");
            q.schedule(t + SimDuration::from_micros(8 * RACE_GAP_US), ev.event);
            t
        })
    });
    g.bench_function("wheel_sparse_48_pending", |b| {
        let mut q: EventQueue<u64> = EventQueue::with_delta_hint(SimDuration::from_millis(1));
        prefill(&mut q, SPARSE_PENDING, &sparse);
        let mut i = 0usize;
        b.iter(|| step(&mut q, &sparse, &mut i))
    });
    g.bench_function("heap_sparse_48_pending", |b| {
        let mut q: HeapEventQueue<u64> = HeapEventQueue::new();
        prefill(&mut q, SPARSE_PENDING, &sparse);
        let mut i = 0usize;
        b.iter(|| step(&mut q, &sparse, &mut i))
    });
    for pending in [1_000usize, 100_000, 1_000_000] {
        let label = match pending {
            1_000 => "1k",
            100_000 => "100k",
            _ => "1m",
        };
        g.bench_function(format!("wheel_{label}_pending"), |b| {
            let mut q: EventQueue<u64> = EventQueue::with_delta_hint(SimDuration::from_millis(1));
            prefill(&mut q, pending, &deltas);
            let mut i = 0usize;
            b.iter(|| step(&mut q, &deltas, &mut i))
        });
        g.bench_function(format!("heap_{label}_pending"), |b| {
            let mut q: HeapEventQueue<u64> = HeapEventQueue::new();
            prefill(&mut q, pending, &deltas);
            let mut i = 0usize;
            b.iter(|| step(&mut q, &deltas, &mut i))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);

//! Figure 5 bench: the workload-shift run (dynamic strategy) whose
//! per-node throughput range the figure plots.

use criterion::{criterion_group, criterion_main, Criterion};
use dynmds_core::{SimConfig, Simulation};
use dynmds_event::SimTime;
use dynmds_namespace::{ClientId, NamespaceSpec};
use dynmds_partition::{StrategyKind, SubtreePartition};
use dynmds_workload::{GeneralWorkload, ShiftingWorkload, WorkloadConfig};

fn run_shift(strategy: StrategyKind) -> u64 {
    let mut cfg = SimConfig::small(strategy);
    cfg.n_mds = 4;
    cfg.n_clients = 24;
    cfg.seed = 4242;
    let snap = NamespaceSpec::with_target_items(36, 6_000, 5).generate();
    let active = &snap.user_homes[..24];
    let reserve = &snap.user_homes[24..];
    let preview = SubtreePartition::initial_near_root(&snap.ns, cfg.n_mds, 2);
    let victim = preview.authority(&snap.ns, reserve[0]);
    let dest: Vec<_> =
        reserve.iter().copied().filter(|&h| preview.authority(&snap.ns, h) == victim).collect();
    let base = GeneralWorkload::new(
        WorkloadConfig { seed: 7, ..Default::default() },
        24,
        active,
        &snap.shared_roots,
        &snap.ns,
    );
    let movers: Vec<ClientId> = (0..24).filter(|c| c % 2 == 0).map(ClientId).collect();
    let wl = Box::new(ShiftingWorkload::new(base, SimTime::from_secs(2), movers, dest));
    let mut sim = Simulation::new(cfg, snap, wl);
    sim.run_until(SimTime::from_secs(6));
    sim.finish().total_served()
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_shift");
    g.sample_size(10);
    g.bench_function("dynamic", |b| b.iter(|| run_shift(StrategyKind::DynamicSubtree)));
    g.bench_function("static", |b| b.iter(|| run_shift(StrategyKind::StaticSubtree)));
    g.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);

//! Figure 2 bench: the steady-state scaling run that yields per-MDS
//! throughput, one benchmark per strategy.

use criterion::{criterion_group, criterion_main, Criterion};
use dynmds_bench::mini_steady;
use dynmds_partition::StrategyKind;

fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_scaling");
    g.sample_size(10);
    for strategy in StrategyKind::ALL {
        g.bench_function(strategy.label(), |b| {
            b.iter(|| {
                let r = mini_steady(strategy, 600);
                assert!(r.avg_mds_throughput() > 0.0);
                r.total_served()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);

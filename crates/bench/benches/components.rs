//! Component microbenches: the hot data structures underneath the
//! simulator — cache, event queue, hashing, namespace resolution, and
//! popularity decay.

use criterion::{criterion_group, criterion_main, Criterion};
use dynmds_cache::{InsertKind, MetaCache, Popularity};
use dynmds_event::{EventQueue, SimDuration, SimRng, SimTime};
use dynmds_namespace::{InodeId, NamespaceSpec};
use dynmds_partition::path_hash;

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.bench_function("insert_evict_cycle", |b| {
        let mut cache = MetaCache::new(1_000);
        let mut i = 0u64;
        b.iter(|| {
            cache.insert(InodeId(i), None, InsertKind::Target);
            i += 1;
        })
    });
    g.bench_function("lookup_hit", |b| {
        let mut cache = MetaCache::new(1_000);
        for i in 0..1_000u64 {
            cache.insert(InodeId(i), None, InsertKind::Target);
        }
        let mut i = 0u64;
        b.iter(|| {
            let hit = cache.lookup(InodeId(i % 1_000), true);
            i += 1;
            hit
        })
    });
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop", |b| {
        let mut q: EventQueue<u64> = EventQueue::with_capacity(1_024);
        let mut rng = SimRng::seed_from_u64(1);
        for i in 0..1_024 {
            q.schedule(SimTime::from_micros(rng.below(1 << 20)), i);
        }
        b.iter(|| {
            let ev = q.pop().expect("non-empty");
            q.schedule(ev.at + SimDuration::from_micros(rng.below(1_000) + 1), ev.event);
            ev.at
        })
    });
}

fn bench_hashing(c: &mut Criterion) {
    c.bench_function("path_hash", |b| {
        let paths: Vec<String> =
            (0..64).map(|i| format!("/home/user{i:04}/d001/f{i:03}_001")).collect();
        let mut i = 0;
        b.iter(|| {
            let h = path_hash(&paths[i % 64], 50);
            i += 1;
            h
        })
    });
}

fn bench_namespace(c: &mut Criterion) {
    let snap = NamespaceSpec::with_target_items(50, 20_000, 3).generate();
    let ns = snap.ns;
    let ids: Vec<InodeId> = ns.live_ids().collect();
    let paths: Vec<String> = ids.iter().step_by(37).map(|&i| ns.path_of(i).unwrap()).collect();
    let mut g = c.benchmark_group("namespace");
    g.bench_function("path_of", |b| {
        let mut i = 0;
        b.iter(|| {
            let p = ns.path_of(ids[i % ids.len()]).unwrap();
            i += 13;
            p
        })
    });
    g.bench_function("resolve", |b| {
        let mut i = 0;
        b.iter(|| {
            let id = ns.resolve(&paths[i % paths.len()]).unwrap();
            i += 1;
            id
        })
    });
    g.bench_function("ancestors_walk", |b| {
        let mut i = 0;
        b.iter(|| {
            let n = ns.ancestors(ids[i % ids.len()]).count();
            i += 7;
            n
        })
    });
    g.finish();
}

fn bench_popularity(c: &mut Criterion) {
    c.bench_function("popularity_record", |b| {
        let mut pop = Popularity::new(SimDuration::from_secs(10));
        let mut t = SimTime::ZERO;
        let mut i = 0u64;
        b.iter(|| {
            t += SimDuration::from_micros(50);
            pop.record(t, InodeId(i % 512));
            i += 1;
        })
    });
}

criterion_group!(
    benches,
    bench_cache,
    bench_event_queue,
    bench_hashing,
    bench_namespace,
    bench_popularity
);
criterion_main!(benches);

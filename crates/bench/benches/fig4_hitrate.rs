//! Figure 4 bench: hit-rate measurement across cache sizes for one
//! strategy (the sweep's unit of work).

use criterion::{criterion_group, criterion_main, Criterion};
use dynmds_bench::mini_steady;
use dynmds_partition::StrategyKind;

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_hitrate");
    g.sample_size(10);
    for cache in [200usize, 800] {
        g.bench_function(format!("dynamic_cache_{cache}"), |b| {
            b.iter(|| {
                let r = mini_steady(StrategyKind::DynamicSubtree, cache);
                r.overall_hit_rate()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);

//! Figure 7 bench: the flash-crowd run, with and without traffic control;
//! asserts the paper's contrast each iteration.

use criterion::{criterion_group, criterion_main, Criterion};
use dynmds_bench::mini_flash;

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_flashcrowd");
    g.sample_size(10);
    g.bench_function("traffic_control_on", |b| b.iter(|| mini_flash(true).total_served()));
    g.bench_function("traffic_control_off", |b| b.iter(|| mini_flash(false).total_served()));
    g.bench_function("contrast", |b| {
        b.iter(|| {
            let on = mini_flash(true);
            let off = mini_flash(false);
            assert!(on.total_served() > off.total_served(), "TC raises crowd throughput");
            on.total_served() - off.total_served()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);

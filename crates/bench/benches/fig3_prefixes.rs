//! Figure 3 bench: the same steady-state run projected to prefix-cache
//! occupancy; asserts the hashed-vs-subtree ordering each iteration.

use criterion::{criterion_group, criterion_main, Criterion};
use dynmds_bench::mini_steady;
use dynmds_partition::StrategyKind;

fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_prefixes");
    g.sample_size(10);
    g.bench_function("filehash_vs_subtree", |b| {
        b.iter(|| {
            let hashed = mini_steady(StrategyKind::FileHash, 600);
            let subtree = mini_steady(StrategyKind::StaticSubtree, 600);
            assert!(hashed.mean_prefix_pct() > subtree.mean_prefix_pct());
            (hashed.mean_prefix_pct(), subtree.mean_prefix_pct())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
